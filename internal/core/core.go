// Package core implements the paper's distributed online data aggregation
// (DODA) framework: the algorithm and adversary contracts, per-node state,
// and the sequential execution engine that plays an algorithm against an
// adversary while enforcing the model's rules — a node transmits its data
// at most once, cannot participate after transmitting, and the execution
// terminates when the sink is the only node owning data.
package core

import (
	"fmt"
	"math"

	"doda/internal/agg"
	"doda/internal/bitset"
	"doda/internal/graph"
	"doda/internal/knowledge"
	"doda/internal/seq"
)

// Decision is the output of a DODA algorithm for one interaction
// I_t = {u, v} (canonically ordered u < v): either no transfer, or the
// identity of the receiver. If a node is designated receiver, the other
// node transmits its data to it (paper §2.1).
type Decision int

const (
	// NoTransfer is the paper's ⊥ output.
	NoTransfer Decision = iota
	// FirstReceives designates it.U (the smaller identifier) as receiver.
	FirstReceives
	// SecondReceives designates it.V as receiver.
	SecondReceives
)

// String renders the decision for traces.
func (d Decision) String() string {
	switch d {
	case NoTransfer:
		return "⊥"
	case FirstReceives:
		return "first"
	case SecondReceives:
		return "second"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Receiver resolves the receiving node of a decision for interaction it.
// ok is false for NoTransfer.
func (d Decision) Receiver(it seq.Interaction) (graph.NodeID, bool) {
	switch d {
	case FirstReceives:
		return it.U, true
	case SecondReceives:
		return it.V, true
	default:
		return 0, false
	}
}

// Sender resolves the transmitting node of a decision for interaction it.
func (d Decision) Sender(it seq.Interaction) (graph.NodeID, bool) {
	switch d {
	case FirstReceives:
		return it.V, true
	case SecondReceives:
		return it.U, true
	default:
		return 0, false
	}
}

// DecisionFor returns the Decision that makes receiver the receiver of
// interaction it, or NoTransfer if receiver is not an endpoint.
func DecisionFor(it seq.Interaction, receiver graph.NodeID) Decision {
	switch receiver {
	case it.U:
		return FirstReceives
	case it.V:
		return SecondReceives
	default:
		return NoTransfer
	}
}

// Env is the execution environment visible to algorithms: the network
// parameters, the knowledge oracles granted for this run, and per-node
// memory for non-oblivious algorithms.
type Env struct {
	// N is the number of nodes; nodes are 0..N-1.
	N int
	// Sink is the designated sink node.
	Sink graph.NodeID
	// Know carries the knowledge oracles granted to nodes (never nil;
	// an empty bundle for the paper's "no knowledge" setting).
	Know *knowledge.Bundle
	// State is per-node algorithm memory. Oblivious algorithms must not
	// touch it; stateful algorithms may store arbitrary values.
	State []any
}

// Algorithm is a distributed online data aggregation algorithm: it takes
// an interaction and its occurrence time and outputs the receiver, or ⊥.
//
// Implementations must be deterministic given (Env, interaction, time)
// and, per the model, may only base decisions on node-local information:
// the granted knowledge oracles, and the memories of the two interacting
// nodes.
type Algorithm interface {
	// Name identifies the algorithm in results and traces.
	Name() string
	// Oblivious reports whether the algorithm requires no persistent
	// node memory (the paper's D∅ODA class).
	Oblivious() bool
	// Setup is called once before execution starts; stateful algorithms
	// initialise Env.State here. Setup must fail if a required knowledge
	// oracle is missing from env.Know.
	Setup(env *Env) error
	// Decide is called for each interaction whose two endpoints both own
	// data; it returns the transfer decision.
	Decide(env *Env, it seq.Interaction, t int) Decision
}

// Observer is an optional extension for algorithms that need to see every
// interaction (not only those where both endpoints own data), e.g. to
// exchange control information such as known futures. Observe runs
// before Decide.
type Observer interface {
	Observe(env *Env, it seq.Interaction, t int)
}

// ExecView is the read-only view of the execution the adversary receives:
// the adaptive online adversary of §2.2 "can use the past execution of
// the algorithm to construct the next interaction".
type ExecView interface {
	// N returns the number of nodes.
	N() int
	// Sink returns the sink node.
	Sink() graph.NodeID
	// Owns reports whether node u currently owns data.
	Owns(u graph.NodeID) bool
	// OwnerCount returns how many nodes currently own data.
	OwnerCount() int
}

// Adversary produces the interaction sequence. Oblivious and randomized
// adversaries ignore the view; the adaptive online adversary reads it.
type Adversary interface {
	// Name identifies the adversary in results and traces.
	Name() string
	// Next returns the interaction at time t. ok is false when the
	// adversary's sequence is exhausted (finite oblivious sequences).
	Next(t int, view ExecView) (seq.Interaction, bool)
}

// BatchAdversary is an optional extension for adversaries whose future
// does not depend on the execution (every oblivious source): the engine
// drains whole buffers of interactions at once, amortising the
// per-interaction interface dispatch and validation of the scalar path
// across the batch. Adaptive adversaries must NOT implement it — they
// need the post-interaction view — and simply keep the scalar Next path;
// the engine falls back transparently.
type BatchAdversary interface {
	Adversary
	// NextBatch fills buf with the interactions at times t, t+1, ...,
	// t+k-1 and returns k. Returning k < len(buf) means the sequence is
	// exhausted after those k interactions (k may be 0); the engine will
	// not call NextBatch again. The engine may consume fewer than k
	// interactions when the run ends mid-batch, so implementations must
	// not assume every generated interaction is played.
	NextBatch(t int, view ExecView, buf []seq.Interaction) int
}

// ProvenanceMode selects how much per-datum provenance an execution
// maintains. Full provenance costs an O(n/64)-word bitset union per
// transfer and O(n²/8) bytes of bitset memory per engine — negligible for
// the paper-scale runs the tests use, but the dominant cost at n ≥ 10⁵.
type ProvenanceMode int

const (
	// ProvenanceFull (the default) tracks the full origin bitset of
	// every datum: the engine detects double aggregation at the moment
	// of the offending transfer and verifies on termination that the
	// sink's datum folds in all n origins exactly once.
	ProvenanceFull ProvenanceMode = iota
	// ProvenanceCount drops the origin bitsets: Result.SinkValue.Origins
	// is nil and only the fold count is maintained. Termination still
	// verifies count == n, transmissions == n-1 and (optionally) the
	// aggregate value, but a double aggregation compensated by a missed
	// one would go undetected.
	ProvenanceCount
	// ProvenanceOff additionally skips all end-of-run verification of
	// the sink value; only the structural run statistics are reported.
	ProvenanceOff
)

// String renders the mode the way CLI flags and sweep cells spell it.
func (m ProvenanceMode) String() string {
	switch m {
	case ProvenanceFull:
		return "full"
	case ProvenanceCount:
		return "count"
	case ProvenanceOff:
		return "off"
	default:
		return fmt.Sprintf("ProvenanceMode(%d)", int(m))
	}
}

// ParseProvenanceMode parses "full", "count" or "off".
func ParseProvenanceMode(s string) (ProvenanceMode, error) {
	switch s {
	case "full":
		return ProvenanceFull, nil
	case "count":
		return ProvenanceCount, nil
	case "off":
		return ProvenanceOff, nil
	default:
		return 0, fmt.Errorf("core: unknown provenance mode %q (want full, count or off)", s)
	}
}

// Event describes one executed interaction, for tracing.
type Event struct {
	T        int
	It       seq.Interaction
	Decision Decision
	Sender   graph.NodeID // valid when Decision != NoTransfer
	Receiver graph.NodeID // valid when Decision != NoTransfer
	// BothOwned reports whether the algorithm was consulted (both
	// endpoints owned data).
	BothOwned bool
}

// EventSink receives execution events; used by the trace recorder.
type EventSink interface {
	// OnEvent is called after each interaction is resolved.
	OnEvent(ev Event)
	// OnDone is called once, after the run ends.
	OnDone(res Result)
}

// Result summarises one execution.
type Result struct {
	// Algorithm and Adversary echo the participants' names.
	Algorithm string
	Adversary string
	// Terminated reports that the sink became the only data owner.
	Terminated bool
	// Failed reports an unwinnable state: the sink transmitted its data
	// away and can never satisfy the termination condition.
	Failed bool
	// FailReason explains a failure.
	FailReason string
	// Duration is the time index of the last transmission (-1 if no
	// transmission happened). When Terminated, this is the paper's
	// duration(A, I).
	Duration int
	// Interactions is the number of interactions consumed.
	Interactions int
	// Transmissions counts data transfers (n-1 exactly when terminated).
	Transmissions int
	// Declined counts interactions where both endpoints owned data but
	// the algorithm output ⊥.
	Declined int
	// LastGap is the number of interactions strictly between the
	// second-to-last and the last transmission (Theorem 7 measures its
	// expectation at n(n-1)/2).
	LastGap int
	// SinkValue is the sink's datum at the end of the run. Its Origins
	// set aliases engine-owned storage that Engine.Reset recycles: read
	// or clone it before resetting the engine that produced it. Under
	// ProvenanceCount and ProvenanceOff, Origins is nil.
	SinkValue agg.Value
}

// Config parameterises an execution.
type Config struct {
	// N is the number of nodes (>= 2).
	N int
	// Sink designates the sink node (default 0).
	Sink graph.NodeID
	// Agg is the aggregation function (default agg.Min).
	Agg agg.Func
	// Payloads are the nodes' initial data (default: payload of node i is
	// float64(i)). Length must equal N when provided.
	Payloads []float64
	// MaxInteractions caps the run (required, > 0): executions against
	// unbounded adversaries stop, unterminated, at this horizon.
	MaxInteractions int
	// Know carries the knowledge oracles granted to nodes (nil = none).
	Know *knowledge.Bundle
	// Events receives trace events (nil = no tracing).
	Events EventSink
	// VerifyAggregate re-computes the expected sink payload on
	// termination and fails the run on mismatch. Cheap; on by default in
	// tests via NewEngine's callers. Ignored under ProvenanceOff.
	VerifyAggregate bool
	// Provenance selects how much per-datum provenance the run maintains
	// (default ProvenanceFull). Large-n measurement runs use
	// ProvenanceCount to shed the per-transfer bitset union and the
	// O(n²) bitset memory; see ProvenanceMode for what each mode still
	// verifies.
	Provenance ProvenanceMode
	// DisableBatch forces the scalar Adversary.Next path even when the
	// adversary implements BatchAdversary. Differential tests use it to
	// prove the batched and scalar paths equivalent.
	DisableBatch bool
	// Arena, when set, supplies the engine's word-backed state — the
	// packed ownership bitset and, under full provenance, every origin
	// set — from one contiguous pre-sized block instead of n+1 separate
	// heap objects. The arena's shape must match (N, Provenance)
	// exactly. The serving layer gives each hosted instance its own
	// arena so instance memory is one block, released in O(1) at
	// eviction; see NewArena.
	Arena *Arena
}

// Engine executes one algorithm against one adversary. A fresh Engine (or
// a Reset one) runs exactly once; sweep workers call Reset between runs to
// reuse the engine's slices and provenance bitsets instead of reallocating
// them per cell.
type Engine struct {
	cfg  Config
	env  *Env
	owns []bool
	data []agg.Value
	nOwn int
	used bool

	// ownWords mirrors owns as a packed bitset (bit u set iff owns[u]),
	// maintained on every transfer. It backs the WordView contract that
	// coarse-batching adversaries and the concurrent runtime's word-
	// parallel prescreen read.
	ownWords []uint64

	// Recycled storage, sized for the largest N seen so far. origins[i]
	// is node i's provenance set: MergeInto unions sets in place, so the
	// n sets allocated here are the only ones the engine ever creates.
	// Non-full provenance modes leave the sets untouched (and, until a
	// full-mode run at that size happens, unallocated).
	origins     []*bitset.Set
	stateBuf    []any
	defPayloads []float64
	emptyKnow   *knowledge.Bundle
	// batch is the reusable BatchAdversary drain buffer, allocated on
	// the first batched run and recycled across Resets.
	batch []seq.Interaction

	// arena is the block the current word-backed state was carved from
	// (nil = ordinary heap allocations). Tracked so Reset can tell a
	// recyclable carve (same arena, same shape: the deterministic carve
	// order re-yields the exact same sub-slices) from a layout change
	// that must re-wrap or re-allocate.
	arena *Arena

	// str holds push-mode (Begin/Feed/Finish) execution state; see
	// stream.go.
	str stream
}

var _ WordView = (*Engine)(nil)

// NewEngine validates cfg and prepares an execution.
func NewEngine(cfg Config) (*Engine, error) {
	e := &Engine{}
	if err := e.Reset(cfg); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset re-arms the engine for a new run under cfg, reusing the previous
// run's slices, per-node provenance bitsets, and default payloads whenever
// the node count allows, so steady-state sweep loops allocate nothing.
//
// Reset recycles the provenance sets a previous run handed out through
// Result.SinkValue: callers that keep a Result across a Reset must read
// (or clone) its Origins before resetting.
func (e *Engine) Reset(cfg Config) error {
	if cfg.N < 2 {
		return fmt.Errorf("core: need at least 2 nodes, got %d", cfg.N)
	}
	if cfg.Sink < 0 || int(cfg.Sink) >= cfg.N {
		return fmt.Errorf("core: sink %d out of range [0,%d)", cfg.Sink, cfg.N)
	}
	if cfg.MaxInteractions <= 0 {
		return fmt.Errorf("core: MaxInteractions must be positive, got %d", cfg.MaxInteractions)
	}
	switch cfg.Provenance {
	case ProvenanceFull, ProvenanceCount, ProvenanceOff:
	default:
		return fmt.Errorf("core: invalid provenance mode %v", cfg.Provenance)
	}
	if cfg.Agg == nil {
		cfg.Agg = agg.Min
	}
	if cfg.Payloads == nil {
		if len(e.defPayloads) != cfg.N {
			e.defPayloads = make([]float64, cfg.N)
			for i := range e.defPayloads {
				e.defPayloads[i] = float64(i)
			}
		}
		cfg.Payloads = e.defPayloads
	}
	if len(cfg.Payloads) != cfg.N {
		return fmt.Errorf("core: %d payloads for %d nodes", len(cfg.Payloads), cfg.N)
	}
	know := cfg.Know
	if know == nil {
		if e.emptyKnow == nil {
			var err error
			e.emptyKnow, err = knowledge.NewBundle()
			if err != nil {
				return err
			}
		}
		know = e.emptyKnow
	}

	ar := cfg.Arena
	if ar != nil {
		if !ar.fits(cfg.N, cfg.Provenance) {
			return fmt.Errorf("core: arena shaped for (n=%d, %s), config wants (n=%d, %s)",
				ar.n, ar.mode, cfg.N, cfg.Provenance)
		}
		ar.reset()
	}

	if cap(e.owns) < cfg.N {
		e.owns = make([]bool, cfg.N)
		e.data = make([]agg.Value, cfg.N)
		e.origins = make([]*bitset.Set, cfg.N)
		e.stateBuf = make([]any, cfg.N)
	}
	nw := bitset.WordsFor(cfg.N)
	if ar != nil {
		e.ownWords = ar.take(nw)
	} else {
		if cap(e.ownWords) < nw || e.arena != nil {
			e.ownWords = make([]uint64, nw)
		}
		e.ownWords = e.ownWords[:nw]
	}
	for i := range e.ownWords {
		e.ownWords[i] = ^uint64(0)
	}
	if tail := uint(cfg.N % 64); tail != 0 {
		e.ownWords[nw-1] = (1 << tail) - 1
	}
	e.owns = e.owns[:cfg.N]
	e.data = e.data[:cfg.N]
	e.origins = e.origins[:cfg.N]
	e.stateBuf = e.stateBuf[:cfg.N]
	if e.env == nil {
		e.env = &Env{}
	}
	e.env.N = cfg.N
	e.env.Sink = cfg.Sink
	e.env.Know = know
	e.env.State = e.stateBuf

	full := cfg.Provenance == ProvenanceFull
	for u := 0; u < cfg.N; u++ {
		var set *bitset.Set
		if full {
			set = e.origins[u]
			if ar != nil {
				// Carving is deterministic (ownWords, then origins in
				// node order), so a set wrapped on the previous Reset of
				// the same arena already aliases exactly these words.
				words := ar.take(nw)
				if set == nil || set.Cap() != cfg.N || e.arena != ar {
					set = bitset.FromWords(cfg.N, words)
					e.origins[u] = set
				}
				set.Clear()
			} else if set == nil || set.Cap() != cfg.N || e.arena != nil {
				set = bitset.New(cfg.N)
				e.origins[u] = set
			} else {
				set.Clear()
			}
			set.Add(u)
		}
		e.owns[u] = true
		e.data[u] = agg.Value{Num: cfg.Payloads[u], Count: 1, Origins: set}
		e.stateBuf[u] = nil
	}
	e.cfg = cfg
	e.arena = ar
	e.nOwn = cfg.N
	e.used = false
	e.str = stream{}
	return nil
}

// N returns the node count.
func (e *Engine) N() int { return e.cfg.N }

// Sink returns the sink node.
func (e *Engine) Sink() graph.NodeID { return e.cfg.Sink }

// Owns reports whether u currently owns data.
func (e *Engine) Owns(u graph.NodeID) bool {
	if u < 0 || int(u) >= e.cfg.N {
		return false
	}
	return e.owns[u]
}

// OwnerCount returns the number of nodes owning data.
func (e *Engine) OwnerCount() int { return e.nOwn }

// OwnerWords returns the packed ownership bitset (bit u set iff node u
// owns data). The slice aliases engine state: it is valid until the next
// transfer or Reset and must not be mutated by callers.
func (e *Engine) OwnerWords() []uint64 { return e.ownWords }

// Env exposes the environment, mainly for tests and the concurrent
// runtime, which shares algorithm state representation with the engine.
func (e *Engine) Env() *Env { return e.env }

// batchSize is the engine's drain-buffer length for BatchAdversary
// sources: large enough to amortise the per-batch dispatch to noise,
// small enough (8 KB) to stay resident in L1.
const batchSize = 512

// Run executes alg against adv until termination, sequence exhaustion,
// failure, or the interaction cap. The returned error reports engine or
// model violations (nil algorithm, transfers between non-owners, double
// aggregation); normal non-termination is not an error.
//
// Adversaries implementing BatchAdversary are drained through a reusable
// buffer instead of one Next call per interaction; the two paths produce
// identical Results (differentially tested across the scenario registry).
func (e *Engine) Run(alg Algorithm, adv Adversary) (Result, error) {
	if alg == nil || adv == nil {
		return Result{}, fmt.Errorf("core: nil algorithm or adversary")
	}
	if e.used {
		return Result{}, fmt.Errorf("core: engine already ran; Reset it (or create a new one) first")
	}
	e.used = true

	// D∅ODA algorithms must not use node memory: deny them the State
	// slice so an accidental write fails loudly instead of silently
	// breaking the obliviousness claim.
	if alg.Oblivious() {
		e.env.State = nil
	}

	if err := alg.Setup(e.env); err != nil {
		return Result{}, fmt.Errorf("core: setup of %s: %w", alg.Name(), err)
	}

	res := Result{
		Algorithm: alg.Name(),
		Adversary: adv.Name(),
		Duration:  -1,
	}

	var err error
	if ba, ok := adv.(BatchAdversary); ok && !e.cfg.DisableBatch {
		err = e.runBatched(alg, ba, &res)
	} else if ca, ok := adv.(CoarseBatchAdversary); ok && !e.cfg.DisableBatch {
		err = e.runCoarse(alg, ca, &res)
	} else {
		err = e.runScalar(alg, adv, &res)
	}
	if err != nil {
		return res, err
	}

	if res.Terminated {
		res.SinkValue = e.data[e.cfg.Sink]
		if err := e.verify(res); err != nil {
			return res, err
		}
	}
	if e.cfg.Events != nil {
		e.cfg.Events.OnDone(res)
	}
	return res, nil
}

// runScalar is the one-Next-call-per-interaction loop, the only path
// adaptive adversaries can use (they need the post-interaction view).
func (e *Engine) runScalar(alg Algorithm, adv Adversary, res *Result) error {
	observer, observes := alg.(Observer)
	events := e.cfg.Events
	for t := 0; t < e.cfg.MaxInteractions; t++ {
		it, ok := adv.Next(t, e)
		if !ok {
			return nil // adversary exhausted its (finite) sequence
		}
		canon, err := seq.NewInteraction(it.U, it.V)
		if err != nil {
			return fmt.Errorf("core: adversary %s at t=%d: %w", adv.Name(), t, err)
		}
		if int(canon.V) >= e.cfg.N {
			return fmt.Errorf("core: adversary %s at t=%d: interaction %v out of range", adv.Name(), t, canon)
		}
		res.Interactions++
		done, err := e.step(alg, observer, observes, events, canon, t, res)
		if err != nil || done {
			return err
		}
	}
	return nil
}

// runBatched drains the adversary through e.batch: one NextBatch call and
// one bounds-checked canonicalisation sweep per batchSize interactions,
// instead of an interface dispatch plus a validating call per interaction.
func (e *Engine) runBatched(alg Algorithm, adv BatchAdversary, res *Result) error {
	observer, observes := alg.(Observer)
	events := e.cfg.Events
	if len(e.batch) == 0 {
		e.batch = make([]seq.Interaction, batchSize)
	}
	n := e.cfg.N
	for t := 0; t < e.cfg.MaxInteractions; {
		want := len(e.batch)
		if rem := e.cfg.MaxInteractions - t; rem < want {
			want = rem
		}
		got := adv.NextBatch(t, e, e.batch[:want])
		if got < 0 || got > want {
			return fmt.Errorf("core: adversary %s returned %d interactions for a %d-slot batch", adv.Name(), got, want)
		}
		for i := 0; i < got; i++ {
			canon := e.batch[i]
			if canon.U > canon.V {
				canon.U, canon.V = canon.V, canon.U
			}
			if canon.U < 0 || canon.U == canon.V || int(canon.V) >= n {
				// Rare path: rebuild the exact error the scalar loop's
				// seq.NewInteraction + range check would have produced.
				if _, err := seq.NewInteraction(e.batch[i].U, e.batch[i].V); err != nil {
					return fmt.Errorf("core: adversary %s at t=%d: %w", adv.Name(), t+i, err)
				}
				return fmt.Errorf("core: adversary %s at t=%d: interaction %v out of range", adv.Name(), t+i, canon)
			}
			res.Interactions++
			done, err := e.step(alg, observer, observes, events, canon, t+i, res)
			if err != nil || done {
				return err
			}
		}
		t += got
		if got < want {
			return nil // adversary exhausted its (finite) sequence
		}
	}
	return nil
}

// step plays one canonical, range-checked interaction — the shared body
// of the scalar and batched loops, so the two paths cannot drift. It
// returns done = true when the run is over (termination or failure).
func (e *Engine) step(alg Algorithm, observer Observer, observes bool, events EventSink, canon seq.Interaction, t int, res *Result) (bool, error) {
	if observes {
		observer.Observe(e.env, canon, t)
	}

	ev := Event{T: t, It: canon}
	if e.owns[canon.U] && e.owns[canon.V] {
		ev.BothOwned = true
		d := alg.Decide(e.env, canon, t)
		ev.Decision = d
		if receiver, transfer := d.Receiver(canon); transfer {
			sender, _ := d.Sender(canon)
			if err := agg.MergeInto(e.cfg.Agg, &e.data[receiver], e.data[sender]); err != nil {
				return false, fmt.Errorf("core: t=%d transfer %d->%d: %w", t, sender, receiver, err)
			}
			e.data[sender] = agg.Value{}
			e.owns[sender] = false
			bitset.ClearWordBit(e.ownWords, int(sender))
			e.nOwn--
			res.Transmissions++
			res.LastGap = t - res.Duration - 1
			res.Duration = t
			ev.Sender, ev.Receiver = sender, receiver
		} else {
			res.Declined++
		}
	}
	if events != nil {
		events.OnEvent(ev)
	}

	if !e.owns[e.cfg.Sink] {
		res.Failed = true
		res.FailReason = fmt.Sprintf("sink %d transmitted its data at t=%d and can never terminate", e.cfg.Sink, t)
		return true, nil
	}
	if e.nOwn == 1 {
		res.Terminated = true
		return true, nil
	}
	return false, nil
}

// verify checks the end-to-end aggregation invariants on termination, to
// the depth the configured provenance mode still supports.
func (e *Engine) verify(res Result) error {
	if e.cfg.Provenance == ProvenanceOff {
		return nil
	}
	v := res.SinkValue
	if v.Count != e.cfg.N {
		return fmt.Errorf("core: sink aggregated %d data, want %d", v.Count, e.cfg.N)
	}
	if e.cfg.Provenance == ProvenanceFull && (v.Origins == nil || !v.Origins.Full()) {
		return fmt.Errorf("core: sink provenance %v incomplete", v.Origins)
	}
	if res.Transmissions != e.cfg.N-1 {
		return fmt.Errorf("core: %d transmissions for %d nodes, want %d",
			res.Transmissions, e.cfg.N, e.cfg.N-1)
	}
	if e.cfg.VerifyAggregate {
		want, err := agg.FoldAll(e.cfg.Agg, e.cfg.Payloads)
		if err != nil {
			return err
		}
		// Tolerate float re-association error: the transmission order is
		// not the fold order, so sums of floats may differ in the last
		// bits.
		tol := 1e-9 * (math.Abs(want) + 1)
		if math.Abs(v.Num-want) > tol {
			return fmt.Errorf("core: sink payload %v, want %v (%s over initial data)",
				v.Num, want, e.cfg.Agg.Name())
		}
	}
	return nil
}

// RunOnce is a convenience wrapper: build an engine from cfg and run.
func RunOnce(cfg Config, alg Algorithm, adv Adversary) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run(alg, adv)
}
