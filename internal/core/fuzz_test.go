package core

// Fuzzing the EngineState boundary: snapshots cross process lifetimes
// through JSON (WAL records, HTTP /state responses), so whatever bytes
// come back — truncated tails, hostile owner lists, out-of-range origins
// — decoding plus RestoreStream must neither panic nor leave the engine
// half-restored.

import (
	"encoding/json"
	"testing"

	"doda/internal/seq"
)

// FuzzEngineStateRoundTrip feeds arbitrary bytes through the
// unmarshal→restore→snapshot path. Two invariants:
//
//  1. No input panics. Bad snapshots are rejected with an error.
//  2. All-or-nothing: when RestoreStream rejects the state, the engine
//     still runs a fresh stream correctly afterward (nothing was left
//     half-written); when it accepts, restore→snapshot is idempotent —
//     the first snapshot is a canonical form that survives another
//     round trip byte-identically (the stability the serving layer's
//     byte-identical recovery diffs rely on).
func FuzzEngineStateRoundTrip(f *testing.F) {
	// A genuine mid-stream snapshot as the seed corpus anchor.
	const n = 9
	eng, err := NewEngine(Config{N: n, MaxInteractions: 1000, Provenance: ProvenanceFull})
	if err != nil {
		f.Fatal(err)
	}
	if err := eng.Begin(greedyAlg{}); err != nil {
		f.Fatal(err)
	}
	for _, it := range uniformSeq(n, 40, 7) {
		if done, err := eng.Feed(it); err != nil || done {
			break
		}
	}
	snap, err := eng.StateSnapshot()
	if err != nil {
		f.Fatal(err)
	}
	good, err := json.Marshal(snap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"n":9,"sink":0,"provenance":"full","t":-5,"owners":[8,2],"data":[{"num":1,"count":1}]}`))
	f.Add([]byte(`{"n":9,"sink":0,"provenance":"full","t":1,"owners":[99],"data":[{"num":1,"count":1,"origins":[-4]}]}`))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var st EngineState
		if err := json.Unmarshal(raw, &st); err != nil {
			return
		}
		cfg := Config{N: n, MaxInteractions: 1000, Provenance: ProvenanceFull}
		e := &Engine{}
		if err := e.RestoreStream(cfg, greedyAlg{}, st); err != nil {
			// Rejected: the engine must still be fully usable.
			if err := e.Reset(cfg); err != nil {
				t.Fatalf("Reset after rejected restore: %v", err)
			}
			if err := e.Begin(greedyAlg{}); err != nil {
				t.Fatalf("Begin after rejected restore: %v", err)
			}
			if _, err := e.Feed(seq.Interaction{U: 1, V: 0}); err != nil {
				t.Fatalf("Feed after rejected restore: %v", err)
			}
			return
		}
		// Accepted: restore→snapshot must be idempotent. (The input
		// itself may be non-canonical — unsorted origins, [] vs null —
		// so the first snapshot canonicalizes and the second must match
		// it byte for byte.)
		canon, err := e.StateSnapshot()
		if err != nil {
			t.Fatalf("StateSnapshot after accepted restore: %v", err)
		}
		first, err := json.Marshal(canon)
		if err != nil {
			t.Fatal(err)
		}
		e2 := &Engine{}
		if err := e2.RestoreStream(cfg, greedyAlg{}, canon); err != nil {
			t.Fatalf("canonical snapshot rejected on second restore: %v", err)
		}
		resnap, err := e2.StateSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(resnap)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(second) {
			t.Fatalf("restore→snapshot not idempotent:\n first  %s\n second %s", first, second)
		}
	})
}
