package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"doda/internal/seq"
)

func TestArenaSizing(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mode ProvenanceMode
		want int // words
	}{
		{2, ProvenanceFull, 1 + 2*1},
		{64, ProvenanceFull, 1 + 64*1},
		{65, ProvenanceFull, 2 + 65*2},
		{64, ProvenanceCount, 1},
		{100, ProvenanceOff, 2},
	} {
		a, err := NewArena(tc.n, tc.mode)
		if err != nil {
			t.Fatalf("NewArena(%d, %v): %v", tc.n, tc.mode, err)
		}
		if got := a.Bytes(); got != tc.want*8 {
			t.Errorf("Arena(%d, %v).Bytes() = %d, want %d", tc.n, tc.mode, got, tc.want*8)
		}
		if got := ArenaBytes(tc.n, tc.mode); got != a.Bytes() {
			t.Errorf("ArenaBytes(%d, %v) = %d, arena has %d", tc.n, tc.mode, got, a.Bytes())
		}
		if a.N() != tc.n || a.Mode() != tc.mode {
			t.Errorf("arena shape = (%d, %v), want (%d, %v)", a.N(), a.Mode(), tc.n, tc.mode)
		}
	}
	if _, err := NewArena(1, ProvenanceFull); err == nil {
		t.Error("NewArena(1, full) should fail")
	}
	if _, err := NewArena(8, ProvenanceMode(42)); err == nil {
		t.Error("NewArena with invalid mode should fail")
	}
}

// TestArenaBackedRunDifferential: an arena-backed engine must be
// behaviourally invisible — identical Results to a heap-backed engine on
// the same workload, in every provenance mode, across repeated Resets of
// the same arena.
func TestArenaBackedRunDifferential(t *testing.T) {
	for _, mode := range []ProvenanceMode{ProvenanceFull, ProvenanceCount, ProvenanceOff} {
		for _, n := range []int{7, 64, 65} {
			arena, err := NewArena(n, mode)
			if err != nil {
				t.Fatal(err)
			}
			arenaEng := &Engine{}
			for round := 0; round < 3; round++ {
				seed := uint64(n*100 + round)
				its := uniformSeq(n, 50*n, seed)
				cfg := Config{N: n, MaxInteractions: len(its), Provenance: mode, VerifyAggregate: true}

				heapRes, err := RunOnce(cfg, greedyAlg{}, funcAdv{gen: func(t int) seq.Interaction { return its[t] }, max: len(its)})
				if err != nil {
					t.Fatalf("heap run (n=%d, %v): %v", n, mode, err)
				}

				cfg.Arena = arena
				if err := arenaEng.Reset(cfg); err != nil {
					t.Fatalf("arena Reset (n=%d, %v): %v", n, mode, err)
				}
				arenaRes, err := arenaEng.Run(greedyAlg{}, funcAdv{gen: func(t int) seq.Interaction { return its[t] }, max: len(its)})
				if err != nil {
					t.Fatalf("arena run (n=%d, %v): %v", n, mode, err)
				}

				// Origins alias different storage; compare membership, then
				// strip for the wholesale comparison.
				if (heapRes.SinkValue.Origins == nil) != (arenaRes.SinkValue.Origins == nil) {
					t.Fatalf("origins presence diverged (n=%d, %v)", n, mode)
				}
				if heapRes.SinkValue.Origins != nil && !heapRes.SinkValue.Origins.Equal(arenaRes.SinkValue.Origins) {
					t.Fatalf("origins diverged (n=%d, %v): %v vs %v", n, mode, heapRes.SinkValue.Origins, arenaRes.SinkValue.Origins)
				}
				heapRes.SinkValue.Origins, arenaRes.SinkValue.Origins = nil, nil
				if !reflect.DeepEqual(normalize(heapRes), normalize(arenaRes)) {
					t.Fatalf("results diverged (n=%d, %v, round %d):\n heap %+v\narena %+v", n, mode, round, heapRes, arenaRes)
				}
			}
		}
	}
}

// TestArenaBackedStreamSnapshot: push-mode snapshots must not care where
// the words live — an arena-backed engine restored from a heap-backed
// snapshot (and vice versa) continues to byte-identical states.
func TestArenaBackedStreamSnapshot(t *testing.T) {
	const n = 24
	its := uniformSeq(n, 400, 99)
	cfg := Config{N: n, MaxInteractions: len(its), Provenance: ProvenanceFull, VerifyAggregate: true}

	heap, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.Begin(greedyAlg{}); err != nil {
		t.Fatal(err)
	}
	fed := 0
	for _, it := range its[:100] {
		done, err := heap.Feed(it)
		if err != nil {
			t.Fatal(err)
		}
		fed++
		if done {
			break
		}
	}
	snap, err := heap.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	arena, err := NewArena(n, ProvenanceFull)
	if err != nil {
		t.Fatal(err)
	}
	acfg := cfg
	acfg.Arena = arena
	ae := &Engine{}
	if err := ae.RestoreStream(acfg, greedyAlg{}, snap); err != nil {
		t.Fatal(err)
	}

	// Continue both and compare snapshots at every step until done.
	for i := fed; i < len(its); i++ {
		hd, herr := heap.Feed(its[i])
		ad, aerr := ae.Feed(its[i])
		if (herr == nil) != (aerr == nil) || hd != ad {
			t.Fatalf("feed %d diverged: heap (%v,%v) arena (%v,%v)", i, hd, herr, ad, aerr)
		}
		if hd {
			break
		}
	}
	hs, err := heap.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	as, err := ae.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := json.Marshal(hs)
	ab, _ := json.Marshal(as)
	if string(hb) != string(ab) {
		t.Fatalf("snapshots diverged:\n heap %s\narena %s", hb, ab)
	}
}

func TestArenaShapeMismatch(t *testing.T) {
	arena, err := NewArena(16, ProvenanceFull)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{}
	for _, cfg := range []Config{
		{N: 8, MaxInteractions: 10, Provenance: ProvenanceFull, Arena: arena},
		{N: 16, MaxInteractions: 10, Provenance: ProvenanceCount, Arena: arena},
	} {
		if err := e.Reset(cfg); err == nil {
			t.Errorf("Reset with mis-shaped arena (n=%d, %v) should fail", cfg.N, cfg.Provenance)
		}
	}
	// The exact shape works.
	if err := e.Reset(Config{N: 16, MaxInteractions: 10, Provenance: ProvenanceFull, Arena: arena}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaResetRecyclesHeaders: steady-state Reset+Run on the same
// arena must not allocate — the carve re-yields the same sub-slices and
// the set headers are reused, preserving the engine's zero-alloc
// contract for arena users.
func TestArenaResetRecyclesHeaders(t *testing.T) {
	const n = 32
	arena, err := NewArena(n, ProvenanceFull)
	if err != nil {
		t.Fatal(err)
	}
	its := uniformSeq(n, 2000, 5)
	cfg := Config{N: n, MaxInteractions: len(its), Provenance: ProvenanceFull, Arena: arena}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Box the adversary (and algorithm) once: passing struct values
	// directly would charge interface-conversion allocations to every
	// run and mask what the arena is supposed to guarantee.
	var adv Adversary = funcAdv{gen: func(t int) seq.Interaction { return its[t] }, max: len(its)}
	var alg Algorithm = greedyAlg{}
	if _, err := e.Run(alg, adv); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := e.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(alg, adv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0.5 {
		t.Fatalf("arena-backed Reset+Run allocates %.1f/run, want 0", allocs)
	}
}

// TestArenaSwitchToHeap: dropping Config.Arena after arena-backed runs
// must not leave the engine aliasing the arena block (which would keep
// it alive and let two engines share words).
func TestArenaSwitchToHeap(t *testing.T) {
	const n = 16
	arena, err := NewArena(n, ProvenanceFull)
	if err != nil {
		t.Fatal(err)
	}
	its := uniformSeq(n, 500, 3)
	acfg := Config{N: n, MaxInteractions: len(its), Provenance: ProvenanceFull, Arena: arena}
	e, err := NewEngine(acfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := funcAdv{gen: func(t int) seq.Interaction { return its[t] }, max: len(its)}
	if _, err := e.Run(greedyAlg{}, adv); err != nil {
		t.Fatal(err)
	}
	hcfg := acfg
	hcfg.Arena = nil
	if err := e.Reset(hcfg); err != nil {
		t.Fatal(err)
	}
	// Scribble over the arena block through a second engine: the
	// heap-backed engine must be unaffected.
	e2, err := NewEngine(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(greedyAlg{}, adv); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(greedyAlg{}, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("heap run after arena detach did not terminate")
	}
	if res.SinkValue.Origins == nil || !res.SinkValue.Origins.Full() {
		t.Fatalf("heap run after arena detach has provenance %v", res.SinkValue.Origins)
	}
}
