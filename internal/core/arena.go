package core

// Arena-backed engine state: one contiguous block per instance.
//
// A full-provenance engine owns O(n²/8) bytes of bitset words spread
// across n+1 heap objects (one origin set per node plus the packed
// ownership words). For a process hosting thousands of aggregation
// instances that scatter is the scaling limit: each instance costs n+1
// allocations, the heap fragments, and releasing an instance hands the
// collector n+1 objects to trace. An Arena carves all of that word
// storage from a single []uint64 block sized exactly from
// (n, provenance mode), so
//
//   - registering an instance costs one allocation for the whole
//     word-backed state,
//   - the block stays contiguous (cache- and TLB-friendly unions), and
//   - evicting the instance releases everything in O(1): dropping the
//     engine and its arena frees one object, not n+1.
//
// The O(n) Go-typed slices the engine also owns (owns []bool, data
// []agg.Value, per-node state headers) stay ordinary allocations — they
// are a vanishing fraction of the footprint and cannot live in a word
// block without unsafe.

import (
	"fmt"

	"doda/internal/bitset"
)

// Arena is a single contiguous word block an Engine carves its bitset
// storage from. An arena is dedicated to one engine at a time and is
// sized for one exact (n, provenance mode) shape; Engine.Reset with
// Config.Arena set re-carves it from offset zero, so the same arena
// serves any number of sequential runs of that shape.
type Arena struct {
	n     int
	mode  ProvenanceMode
	block []uint64
	off   int
}

// arenaWords returns the block size in words for one engine of the
// given shape: the packed ownership bitset, plus (under full
// provenance) one n-bit origin set per node.
func arenaWords(n int, mode ProvenanceMode) int {
	w := bitset.WordsFor(n)
	if mode == ProvenanceFull {
		w += n * bitset.WordsFor(n)
	}
	return w
}

// NewArena allocates the contiguous block for one engine of shape
// (n, mode). The returned arena is empty; pass it via Config.Arena.
func NewArena(n int, mode ProvenanceMode) (*Arena, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: arena needs at least 2 nodes, got %d", n)
	}
	switch mode {
	case ProvenanceFull, ProvenanceCount, ProvenanceOff:
	default:
		return nil, fmt.Errorf("core: invalid provenance mode %v", mode)
	}
	return &Arena{n: n, mode: mode, block: make([]uint64, arenaWords(n, mode))}, nil
}

// N returns the node count the arena is shaped for.
func (a *Arena) N() int { return a.n }

// Mode returns the provenance mode the arena is shaped for.
func (a *Arena) Mode() ProvenanceMode { return a.mode }

// Bytes returns the block's size in bytes — the figure dodabench's
// serve_density section commits per instance.
func (a *Arena) Bytes() int { return len(a.block) * 8 }

// ArenaBytes returns the block size in bytes an arena of shape
// (n, mode) would occupy, without allocating it.
func ArenaBytes(n int, mode ProvenanceMode) int {
	return arenaWords(n, mode) * 8
}

// reset rewinds the carve offset; the next take starts at word 0.
func (a *Arena) reset() { a.off = 0 }

// take carves the next nw words from the block. The words are NOT
// zeroed — callers overwrite or clear them — and carving past the end
// panics, because the block is sized exactly for the engine shape the
// arena was built for.
func (a *Arena) take(nw int) []uint64 {
	if a.off+nw > len(a.block) {
		panic(fmt.Sprintf("core: arena overflow: %d+%d words of %d", a.off, nw, len(a.block)))
	}
	s := a.block[a.off : a.off+nw : a.off+nw]
	a.off += nw
	return s
}

// fits reports whether the arena serves a run of shape (n, mode).
// Shapes must match exactly: a mis-shaped arena is a configuration bug,
// not something to paper over with a fallback allocation.
func (a *Arena) fits(n int, mode ProvenanceMode) bool {
	return a.n == n && a.mode == mode
}
