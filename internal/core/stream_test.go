package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"doda/internal/rng"
	"doda/internal/seq"
)

// greedyAlg funnels data toward the smaller endpoint — an oblivious
// algorithm that terminates quickly under uniform interactions, so
// differential runs exercise the full lifecycle.
type greedyAlg struct{}

func (greedyAlg) Name() string     { return "greedy-min" }
func (greedyAlg) Oblivious() bool  { return true }
func (greedyAlg) Setup(*Env) error { return nil }
func (greedyAlg) Decide(_ *Env, it seq.Interaction, _ int) Decision {
	return FirstReceives
}

// funcAdv adapts a generator function into an Adversary.
type funcAdv struct {
	gen func(t int) seq.Interaction
	max int
}

func (funcAdv) Name() string { return "gen" }
func (a funcAdv) Next(t int, _ ExecView) (seq.Interaction, bool) {
	if t >= a.max {
		return seq.Interaction{}, false
	}
	return a.gen(t), true
}

func uniformSeq(n, k int, seed uint64) []seq.Interaction {
	gen := seq.UniformGen(n, rng.New(seed))
	its := make([]seq.Interaction, k)
	for t := range its {
		its[t] = gen(t)
	}
	return its
}

// normalize drops fields that legitimately differ between pull and push
// mode (Adversary name) so the rest can be compared wholesale.
func normalize(r Result) Result {
	r.Adversary = ""
	return r
}

func TestFeedMatchesRun(t *testing.T) {
	for _, tc := range []struct {
		name string
		prov ProvenanceMode
		n    int
		seed uint64
	}{
		{"full-n8", ProvenanceFull, 8, 1},
		{"full-n33", ProvenanceFull, 33, 7},
		{"count-n33", ProvenanceCount, 33, 7},
		{"off-n16", ProvenanceOff, 16, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			its := uniformSeq(tc.n, 4*tc.n*tc.n, tc.seed)
			cfg := Config{
				N:               tc.n,
				MaxInteractions: len(its),
				Provenance:      tc.prov,
				VerifyAggregate: tc.prov != ProvenanceOff,
			}

			gen := func(t int) seq.Interaction { return its[t] }
			want, err := RunOnce(cfg, greedyAlg{}, funcAdv{gen: gen, max: len(its)})
			if err != nil {
				t.Fatalf("pull run: %v", err)
			}

			e, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Begin(greedyAlg{}); err != nil {
				t.Fatal(err)
			}
			for _, it := range its {
				done, err := e.Feed(it)
				if err != nil {
					t.Fatalf("feed: %v", err)
				}
				if done {
					break
				}
			}
			got, err := e.Finish()
			if err != nil {
				t.Fatalf("finish: %v", err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("push result %+v\n  want %+v", got, want)
			}
		})
	}
}

func TestFeedAfterDoneIsIgnored(t *testing.T) {
	cfg := Config{N: 3, MaxInteractions: 10, VerifyAggregate: true}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(greedyAlg{}); err != nil {
		t.Fatal(err)
	}
	// 2->1, then 1->0 terminates.
	for _, it := range []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}} {
		if _, err := e.Feed(it); err != nil {
			t.Fatal(err)
		}
	}
	if !e.StreamDone() {
		t.Fatal("run should be done")
	}
	done, err := e.Feed(seq.Interaction{U: 0, V: 2})
	if !done || err != nil {
		t.Fatalf("post-done Feed = (%v, %v), want (true, nil)", done, err)
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated || res.Interactions != 2 {
		t.Errorf("res = %+v", res)
	}
	// Finish is idempotent.
	res2, err := e.Finish()
	if err != nil || !reflect.DeepEqual(res, res2) {
		t.Errorf("second Finish = %+v, %v", res2, err)
	}
}

func TestFeedHonorsMaxInteractions(t *testing.T) {
	cfg := Config{N: 4, MaxInteractions: 3}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(scriptAlg{}); err != nil { // never transfers
		t.Fatal(err)
	}
	var done bool
	for i := 0; i < 5; i++ {
		done, err = e.Feed(seq.Interaction{U: 0, V: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal("horizon should end the run")
	}
	res, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions != 3 || res.Terminated {
		t.Errorf("res = %+v", res)
	}
}

func TestFeedRejectsInvalidInteractions(t *testing.T) {
	for _, it := range []seq.Interaction{{U: 2, V: 2}, {U: -1, V: 1}, {U: 0, V: 99}} {
		e, err := NewEngine(Config{N: 4, MaxInteractions: 10})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Begin(greedyAlg{}); err != nil {
			t.Fatal(err)
		}
		done, err := e.Feed(it)
		if !done || err == nil {
			t.Errorf("Feed(%v) = (%v, %v), want done with error", it, done, err)
		}
	}
}

func TestBeginRequiresFreshEngine(t *testing.T) {
	e, err := NewEngine(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(greedyAlg{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(greedyAlg{}); err == nil {
		t.Fatal("second Begin should fail")
	}
	if err := e.Reset(Config{N: 3, MaxInteractions: 5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(greedyAlg{}); err != nil {
		t.Fatalf("Begin after Reset: %v", err)
	}
}

// TestSnapshotRestoreResumesIdentically cuts a fed run at every prefix
// point, snapshots, restores into a fresh engine, replays the tail, and
// requires the final state to be byte-identical (JSON) to the
// uninterrupted run — the durability contract internal/serve relies on.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	for _, prov := range []ProvenanceMode{ProvenanceFull, ProvenanceCount} {
		n := 12
		its := uniformSeq(n, 4*n*n, 11)
		cfg := Config{N: n, MaxInteractions: len(its), Provenance: prov, VerifyAggregate: prov == ProvenanceFull}

		// Uninterrupted reference run.
		ref, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Begin(greedyAlg{}); err != nil {
			t.Fatal(err)
		}
		var refStates [][]byte // JSON state after each fed interaction
		for _, it := range its {
			done, err := ref.Feed(it)
			if err != nil {
				t.Fatal(err)
			}
			st, err := ref.StateSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			refStates = append(refStates, b)
			if done {
				break
			}
		}
		final := refStates[len(refStates)-1]

		for cut := 0; cut < len(refStates); cut += 3 {
			var st EngineState
			if err := json.Unmarshal(refStates[cut], &st); err != nil {
				t.Fatal(err)
			}
			e := &Engine{}
			if err := e.RestoreStream(cfg, greedyAlg{}, st); err != nil {
				t.Fatalf("prov=%v cut=%d restore: %v", prov, cut, err)
			}
			// Replay the tail.
			for i := cut + 1; i < len(refStates); i++ {
				if _, err := e.Feed(its[i]); err != nil {
					t.Fatalf("prov=%v cut=%d feed %d: %v", prov, cut, i, err)
				}
			}
			got, err := e.StateSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if string(b) != string(final) {
				t.Fatalf("prov=%v cut=%d resumed state diverged:\n got %s\nwant %s", prov, cut, b, final)
			}
			// The resumed run must pass full terminal verification.
			res, err := e.Finish()
			if err != nil {
				t.Fatalf("prov=%v cut=%d finish: %v", prov, cut, err)
			}
			if !res.Terminated {
				t.Fatalf("prov=%v cut=%d not terminated: %+v", prov, cut, res)
			}
		}
	}
}

func TestSnapshotRejectsStatefulAlgorithms(t *testing.T) {
	e, err := NewEngine(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Begin(statefulAlg{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StateSnapshot(); err == nil {
		t.Fatal("snapshot of stateful algorithm should fail")
	}
	if err := (&Engine{}).RestoreStream(Config{N: 3, MaxInteractions: 5}, statefulAlg{}, EngineState{N: 3}); err == nil {
		t.Fatal("restore of stateful algorithm should fail")
	}
}

// statefulAlg is a minimal non-oblivious algorithm for guard tests.
type statefulAlg struct{}

func (statefulAlg) Name() string     { return "stateful" }
func (statefulAlg) Oblivious() bool  { return false }
func (statefulAlg) Setup(*Env) error { return nil }
func (statefulAlg) Decide(_ *Env, _ seq.Interaction, _ int) Decision {
	return NoTransfer
}

func TestRestoreRejectsMismatchedSnapshot(t *testing.T) {
	cfg := Config{N: 4, MaxInteractions: 10}
	src, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Begin(greedyAlg{}); err != nil {
		t.Fatal(err)
	}
	st, err := src.StateSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func(*EngineState)
		cfg    Config
	}{
		{"wrong-n", func(*EngineState) {}, Config{N: 5, MaxInteractions: 10}},
		{"wrong-sink", func(*EngineState) {}, Config{N: 4, Sink: 1, MaxInteractions: 10}},
		{"wrong-prov", func(*EngineState) {}, Config{N: 4, MaxInteractions: 10, Provenance: ProvenanceCount}},
		{"owner-range", func(s *EngineState) { s.Owners[0] = 9 }, cfg},
		{"owner-order", func(s *EngineState) { s.Owners[1] = s.Owners[0] }, cfg},
		{"len-mismatch", func(s *EngineState) { s.Data = s.Data[:1] }, cfg},
		{"origin-range", func(s *EngineState) { s.Data[0].Origins = []int{77} }, cfg},
	} {
		bad := st
		bad.Owners = append([]int(nil), st.Owners...)
		bad.Data = make([]ValueState, len(st.Data))
		for i, d := range st.Data {
			bad.Data[i] = d
			bad.Data[i].Origins = append([]int(nil), d.Origins...)
		}
		tc.mutate(&bad)
		if err := (&Engine{}).RestoreStream(tc.cfg, greedyAlg{}, bad); err == nil {
			t.Errorf("%s: RestoreStream should fail", tc.name)
		}
	}
}
