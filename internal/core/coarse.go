package core

// Coarse-state batching: the contract that lets *adaptive* adversaries
// join the batched fast path, plus the word-parallel ownership prescreen
// shared with the concurrent runtime.
//
// The paper's adaptive online adversary may read the whole past
// execution, which forces one Next call per interaction — the engine
// cannot know what the adversary would have emitted after a transfer it
// has not played yet. But several adaptive adversaries (owner-pair
// samplers, the Theorem-1/3 families) only ever read *coarse* ownership
// state: which nodes still own data, and how many. Between two
// transfers that state is frozen, so every interaction the adversary
// would emit is already determined at the previous transfer. The
// CoarseBatchAdversary contract exploits exactly that window: the engine
// drains a batch against the current state, consumes it until the
// ownership state changes, then throws the rest away and re-drains. For
// a pure implementation the replay is invisible: the consumed prefix is
// byte-identical to what the scalar path would have played.

import (
	"fmt"
	"math/bits"

	"doda/internal/bitset"
	"doda/internal/seq"
)

// WordView extends ExecView with the packed ownership bitset, the coarse
// state coarse-batching adversaries and word-parallel prescreens key on.
// Bit u of OwnerWords() is set iff node u currently owns data.
type WordView interface {
	ExecView
	// OwnerWords returns the ownership bitset as packed 64-bit words
	// (bit u at words[u/64] bit u%64). The slice aliases live execution
	// state: it is only valid until the next transfer, and callers must
	// not mutate it.
	OwnerWords() []uint64
}

// CoarseBatchAdversary is the adaptive analogue of BatchAdversary, for
// adversaries whose emissions are a pure function of the time index and
// the coarse ownership state (owner count / ownership words) — not of
// the full execution history.
//
// The purity requirement is load-bearing: the engine consumes a drained
// batch only up to (and including) the first interaction that changes
// the ownership state, discards the rest, and calls NextCoarseBatch
// again from the new state. Implementations must therefore emit the
// same interactions for the same (t, ownership state) regardless of how
// many times or in what batch sizes they are asked — no internal
// counters, no caching keyed on call order, no randomness that is not
// derived from (seed, t, state).
type CoarseBatchAdversary interface {
	Adversary
	// NextCoarseBatch fills buf with the interactions at times t, t+1,
	// ..., computed against the ownership state in view at call time,
	// and returns how many it produced. Returning k < len(buf) means
	// the sequence is exhausted after those k interactions *under the
	// current state* (k may be 0). The engine may consume any prefix.
	NextCoarseBatch(t int, view WordView, buf []seq.Interaction) int
}

// PrescreenBoth computes, word-parallel over the ownership bitset, which
// interactions of batch still have both endpoints owning data. Bit i of
// mask is set iff batch[i] is "active"; tail bits beyond len(batch) are
// zeroed. It returns the number of active interactions.
//
// Ownership is monotone within a run (true → false only), so a batch
// prescreened against the state at drain time stays sound as the batch
// is consumed: an interaction screened out now can never become active
// later. Screened-out interactions still count as interactions — they
// are no-ops for every algorithm because Decide is only consulted when
// both endpoints own data — which is what makes it sound to skip their
// dispatch entirely. (Observer algorithms see every interaction and must
// not be prescreened; callers gate on that.)
//
// mask must have at least (len(batch)+63)/64 words. words is indexed by
// node id; callers guarantee batch is canonical and in range.
func PrescreenBoth(words []uint64, batch []seq.Interaction, mask []uint64) int {
	active := 0
	for base := 0; base < len(batch); base += 64 {
		end := len(batch) - base
		if end > 64 {
			end = 64
		}
		var m uint64
		for i := 0; i < end; i++ {
			it := batch[base+i]
			if bitset.TestWord(words, int(it.U)) && bitset.TestWord(words, int(it.V)) {
				m |= 1 << uint(i)
			}
		}
		mask[base>>6] = m
		active += bits.OnesCount64(m)
	}
	return active
}

// runCoarse drains a CoarseBatchAdversary through e.batch, replaying each
// drained prefix until the ownership state changes (a transfer), then
// re-draining from the new state. Differentially tested equal to the
// scalar path for pure implementations.
func (e *Engine) runCoarse(alg Algorithm, adv CoarseBatchAdversary, res *Result) error {
	observer, observes := alg.(Observer)
	events := e.cfg.Events
	if len(e.batch) == 0 {
		e.batch = make([]seq.Interaction, batchSize)
	}
	n := e.cfg.N
	for t := 0; t < e.cfg.MaxInteractions; {
		want := len(e.batch)
		if rem := e.cfg.MaxInteractions - t; rem < want {
			want = rem
		}
		got := adv.NextCoarseBatch(t, e, e.batch[:want])
		if got < 0 || got > want {
			return fmt.Errorf("core: adversary %s returned %d interactions for a %d-slot batch", adv.Name(), got, want)
		}
		if got == 0 {
			return nil // exhausted under the current state
		}
		ownBefore := e.nOwn
		consumed := got
		for i := 0; i < got; i++ {
			canon := e.batch[i]
			if canon.U > canon.V {
				canon.U, canon.V = canon.V, canon.U
			}
			if canon.U < 0 || canon.U == canon.V || int(canon.V) >= n {
				if _, err := seq.NewInteraction(e.batch[i].U, e.batch[i].V); err != nil {
					return fmt.Errorf("core: adversary %s at t=%d: %w", adv.Name(), t+i, err)
				}
				return fmt.Errorf("core: adversary %s at t=%d: interaction %v out of range", adv.Name(), t+i, canon)
			}
			res.Interactions++
			done, err := e.step(alg, observer, observes, events, canon, t+i, res)
			if err != nil || done {
				return err
			}
			if e.nOwn != ownBefore {
				// A transfer invalidated the rest of the batch: the
				// adversary would have emitted different interactions
				// from here. Discard and re-drain at the new state.
				consumed = i + 1
				break
			}
		}
		t += consumed
		if consumed == got && got < want && e.nOwn == ownBefore {
			// The whole batch was consumed without an ownership change,
			// so the state the adversary declared exhaustion under still
			// holds: the scalar path's Next(t) would also return !ok. If
			// a transfer landed on the batch's last interaction, the
			// exhaustion claim was made under dead state — fall through
			// and re-drain.
			return nil
		}
	}
	return nil
}
