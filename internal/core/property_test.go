package core

import (
	"testing"
	"testing/quick"

	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// chaosAlg makes uniformly random decisions — including illegal-looking
// ones like ordering the sink to transmit. Whatever it does, the engine
// must preserve the model invariants.
type chaosAlg struct {
	src *rng.Source
}

func (chaosAlg) Name() string     { return "chaos" }
func (chaosAlg) Oblivious() bool  { return true }
func (chaosAlg) Setup(*Env) error { return nil }
func (c chaosAlg) Decide(_ *Env, it seq.Interaction, _ int) Decision {
	switch c.src.Intn(3) {
	case 0:
		return FirstReceives
	case 1:
		return SecondReceives
	default:
		return NoTransfer
	}
}

// auditSink tracks ownership from events independently of the engine.
type auditSink struct {
	n          int
	owns       []bool
	violations []string
}

func newAuditSink(n int) *auditSink {
	a := &auditSink{n: n, owns: make([]bool, n)}
	for i := range a.owns {
		a.owns[i] = true
	}
	return a
}

func (a *auditSink) OnEvent(ev Event) {
	receiver, transfer := ev.Decision.Receiver(ev.It)
	if !transfer {
		return
	}
	sender, _ := ev.Decision.Sender(ev.It)
	if !ev.BothOwned {
		a.violations = append(a.violations, "transfer without both owners")
	}
	if !a.owns[sender] {
		a.violations = append(a.violations, "sender already transmitted")
	}
	if !a.owns[receiver] {
		a.violations = append(a.violations, "receiver already transmitted")
	}
	a.owns[sender] = false
}

func (a *auditSink) OnDone(res Result) {
	owners := 0
	for _, o := range a.owns {
		if o {
			owners++
		}
	}
	if res.Terminated && owners != 1 {
		a.violations = append(a.violations, "terminated with multiple owners")
	}
	if res.Transmissions != a.n-owners {
		a.violations = append(a.violations, "transmission count mismatch")
	}
}

func TestPropertyChaosPreservesInvariants(t *testing.T) {
	// Whatever decisions the algorithm makes on whatever adversary, the
	// engine never allows a node to transmit twice, to receive after
	// transmitting, or to terminate in an inconsistent state — and when
	// it terminates, the sink's provenance covers every node exactly
	// once.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(10)
		audit := newAuditSink(n)
		adv := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
			a, b := src.Pair(n)
			return seq.Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}, true
		})
		res, err := RunOnce(Config{
			N: n, MaxInteractions: 50 * n * n, Events: audit, VerifyAggregate: true,
		}, chaosAlg{src: src.Split()}, adv)
		if err != nil {
			// The engine rejects double aggregation with an error rather
			// than corrupting state; chaos cannot trigger it because the
			// engine gates Decide on ownership — so any error is a bug.
			t.Logf("engine error: %v", err)
			return false
		}
		if len(audit.violations) > 0 {
			t.Logf("violations: %v", audit.violations)
			return false
		}
		if res.Failed {
			// Chaos ordered the sink to transmit: legal outcome, but the
			// run must have stopped immediately after.
			return !res.Terminated
		}
		if res.Terminated {
			return res.SinkValue.Count == n && res.SinkValue.Origins.Full()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransmissionsBounded(t *testing.T) {
	// Across any run, transmissions never exceed n-1 and declined +
	// transmissions never exceed interactions.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(8)
		adv := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
			a, b := src.Pair(n)
			return seq.Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}, true
		})
		res, err := RunOnce(Config{N: n, MaxInteractions: 20 * n * n},
			chaosAlg{src: src.Split()}, adv)
		if err != nil {
			return false
		}
		if res.Transmissions > n-1 {
			return false
		}
		return res.Transmissions+res.Declined <= res.Interactions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDurationConsistency(t *testing.T) {
	// Duration is -1 with no transmissions, otherwise the time of the
	// last one, which is always < Interactions.
	f := func(seedRaw uint64) bool {
		src := rng.New(seedRaw)
		n := 3 + src.Intn(8)
		adv := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
			a, b := src.Pair(n)
			return seq.Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}, true
		})
		res, err := RunOnce(Config{N: n, MaxInteractions: 10 * n * n},
			chaosAlg{src: src.Split()}, adv)
		if err != nil {
			return false
		}
		if res.Transmissions == 0 {
			return res.Duration == -1
		}
		return res.Duration >= 0 && res.Duration < res.Interactions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
