package core

// Tests for the coarse-state batching contract and the word-parallel
// ownership prescreen: runCoarse must be observationally identical to the
// scalar path for any pure CoarseBatchAdversary (results, errors, partial
// progress, exhaustion), PrescreenBoth must agree with the naive
// both-own check, and the engine's OwnerWords mirror must track owns
// exactly through a run.

import (
	"fmt"
	"testing"

	"doda/internal/bitset"
	"doda/internal/graph"
	"doda/internal/rng"
	"doda/internal/seq"
)

// mix64 is the splitmix64 finalizer: the hash coarse test adversaries use
// to derive per-t randomness purely from (seed, t).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// coarseOwnersAdv picks a pseudo-random pair of current owners — a pure
// function of (seed, t, ownership words), so it may implement
// CoarseBatchAdversary. limit > 0 bounds the sequence (exhaustion tests);
// badAt >= 0 emits an invalid interaction at that time (error parity
// tests).
type coarseOwnersAdv struct {
	seed  uint64
	limit int
	badAt int
}

func (coarseOwnersAdv) Name() string { return "coarse-owners" }

func (a coarseOwnersAdv) pick(t, nOwn int, words []uint64) (seq.Interaction, bool) {
	if a.limit > 0 && t >= a.limit {
		return seq.Interaction{}, false
	}
	if a.badAt >= 0 && t == a.badAt {
		return seq.Interaction{U: 5, V: 5}, true
	}
	if nOwn < 2 {
		return seq.Interaction{}, false
	}
	h := mix64(a.seed ^ uint64(t)*0x9e3779b97f4a7c15)
	i := int(h % uint64(nOwn))
	j := int((h >> 32) % uint64(nOwn-1))
	if j >= i {
		j++
	}
	u := bitset.SelectWord(words, i)
	v := bitset.SelectWord(words, j)
	return seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)}, true
}

func (a coarseOwnersAdv) Next(t int, view ExecView) (seq.Interaction, bool) {
	wv := view.(WordView)
	return a.pick(t, wv.OwnerCount(), wv.OwnerWords())
}

func (a coarseOwnersAdv) NextCoarseBatch(t int, view WordView, buf []seq.Interaction) int {
	nOwn, words := view.OwnerCount(), view.OwnerWords()
	k := 0
	for ; k < len(buf); k++ {
		it, ok := a.pick(t+k, nOwn, words)
		if !ok {
			break
		}
		buf[k] = it
	}
	return k
}

// runCoarseAndScalar plays the same coarse adversary through the coarse
// and scalar paths and returns (coarse, scalar) along with any errors.
func runCoarseAndScalar(t *testing.T, cfg Config, alg Algorithm, adv coarseOwnersAdv) (Result, Result, error, error) {
	t.Helper()
	var out [2]Result
	var errs [2]error
	for i, disable := range []bool{false, true} {
		c := cfg
		c.DisableBatch = disable
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		out[i], errs[i] = eng.Run(alg, adv)
	}
	return out[0], out[1], errs[0], errs[1]
}

// TestCoarseMatchesScalar is the differential gate for the coarse path:
// identical Results across sizes spanning sub-batch to multi-batch runs
// and all provenance modes, for both a terminating (gathering) and a
// never-transferring workload.
func TestCoarseMatchesScalar(t *testing.T) {
	for _, n := range []int{4, 16, 65, 192} {
		for _, mode := range []ProvenanceMode{ProvenanceFull, ProvenanceCount, ProvenanceOff} {
			cfg := Config{
				N: n, MaxInteractions: 400*n*n + 4000,
				VerifyAggregate: true, Provenance: mode,
			}
			adv := coarseOwnersAdv{seed: uint64(n)*13 + uint64(mode), badAt: -1}
			label := fmt.Sprintf("n=%d prov=%v", n, mode)

			coarse, scalar, errC, errS := runCoarseAndScalar(t, cfg, gatherAlg{}, adv)
			if errC != nil || errS != nil {
				t.Fatalf("%s: %v / %v", label, errC, errS)
			}
			sameResult(t, label, coarse, scalar)
			if !coarse.Terminated {
				t.Errorf("%s: gathering over owner pairs must terminate", label)
			}
			// Every emitted pair both-owns, so n-1 transmissions happen in
			// exactly n-1 interactions.
			if coarse.Interactions != n-1 {
				t.Errorf("%s: %d interactions, want %d", label, coarse.Interactions, n-1)
			}
		}
	}

	// waitAlg never transfers: the coarse batches are never invalidated
	// and the run must consume exactly the cap through both paths.
	for _, cap := range []int{1, batchSize - 1, batchSize, batchSize + 1, 3*batchSize + 17} {
		cfg := Config{N: 48, MaxInteractions: cap}
		adv := coarseOwnersAdv{seed: 5, badAt: -1}
		coarse, scalar, errC, errS := runCoarseAndScalar(t, cfg, waitAlg{}, adv)
		if errC != nil || errS != nil {
			t.Fatalf("cap=%d: %v / %v", cap, errC, errS)
		}
		sameResult(t, fmt.Sprintf("cap=%d", cap), coarse, scalar)
		if coarse.Interactions != cap {
			t.Errorf("cap=%d: consumed %d", cap, coarse.Interactions)
		}
	}
}

// TestCoarseExhaustionMatchesScalar ends the sequence at every offset
// relative to the batch size, through both paths.
func TestCoarseExhaustionMatchesScalar(t *testing.T) {
	for _, limit := range []int{1, batchSize - 1, batchSize, batchSize + 3} {
		cfg := Config{N: 64, MaxInteractions: 1 << 20}
		adv := coarseOwnersAdv{seed: 9, limit: limit, badAt: -1}
		coarse, scalar, errC, errS := runCoarseAndScalar(t, cfg, waitAlg{}, adv)
		if errC != nil || errS != nil {
			t.Fatalf("limit=%d: %v / %v", limit, errC, errS)
		}
		sameResult(t, fmt.Sprintf("limit=%d", limit), coarse, scalar)
		if coarse.Interactions != limit {
			t.Errorf("limit=%d: consumed %d", limit, coarse.Interactions)
		}
	}
}

// stateBoundAdv emits {0,1} while t < 3 under full ownership, and {0,2}
// while t < 6 once any transfer has happened — a pure function of
// (t, owner count) whose *exhaustion point moves* when ownership changes.
type stateBoundAdv struct{}

func (stateBoundAdv) Name() string { return "state-bound" }
func (a stateBoundAdv) pick(t, n, nOwn int) (seq.Interaction, bool) {
	if nOwn == n {
		if t >= 3 {
			return seq.Interaction{}, false
		}
		return seq.Interaction{U: 0, V: 1}, true
	}
	if t >= 6 {
		return seq.Interaction{}, false
	}
	return seq.Interaction{U: 0, V: 2}, true
}
func (a stateBoundAdv) Next(t int, view ExecView) (seq.Interaction, bool) {
	return a.pick(t, view.N(), view.OwnerCount())
}
func (a stateBoundAdv) NextCoarseBatch(t int, view WordView, buf []seq.Interaction) int {
	k := 0
	for ; k < len(buf); k++ {
		it, ok := a.pick(t+k, view.N(), view.OwnerCount())
		if !ok {
			break
		}
		buf[k] = it
	}
	return k
}

// transferAtAlg transfers to the first endpoint exactly at time `at`.
type transferAtAlg struct{ at int }

func (transferAtAlg) Name() string     { return "transfer-at" }
func (transferAtAlg) Oblivious() bool  { return true }
func (transferAtAlg) Setup(*Env) error { return nil }
func (a transferAtAlg) Decide(_ *Env, _ seq.Interaction, t int) Decision {
	if t == a.at {
		return FirstReceives
	}
	return NoTransfer
}

// TestCoarseExhaustionAfterFinalTransfer pins the trickiest coarse
// window: the adversary declares exhaustion (short batch), but the
// ownership change lands on that batch's *last* interaction, so the
// exhaustion claim was made under dead state. The engine must re-drain
// instead of stopping — the scalar path keeps going.
func TestCoarseExhaustionAfterFinalTransfer(t *testing.T) {
	for _, disable := range []bool{false, true} {
		eng, err := NewEngine(Config{N: 8, MaxInteractions: 1 << 20, DisableBatch: disable})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(transferAtAlg{at: 2}, stateBoundAdv{})
		if err != nil {
			t.Fatal(err)
		}
		// Scalar: t=0,1 declined {0,1}; t=2 transfer 1->0; then the bound
		// moves to 6: t=3,4,5 declined {0,2}; exhausted at t=6.
		if res.Interactions != 6 || res.Transmissions != 1 || res.Declined != 5 {
			t.Errorf("disable=%v: %+v", disable, res)
		}
	}
}

// TestCoarseErrorParity demands the exact error and partial progress of
// the scalar path when the adversary emits an invalid interaction.
func TestCoarseErrorParity(t *testing.T) {
	for _, at := range []int{0, 7, batchSize, batchSize + 5} {
		cfg := Config{N: 16, MaxInteractions: 1 << 20}
		adv := coarseOwnersAdv{seed: 3, badAt: at}
		coarse, scalar, errC, errS := runCoarseAndScalar(t, cfg, waitAlg{}, adv)
		if errC == nil || errS == nil {
			t.Fatalf("at=%d: expected errors, got %v / %v", at, errC, errS)
		}
		if errC.Error() != errS.Error() {
			t.Errorf("at=%d: coarse error %q != scalar %q", at, errC, errS)
		}
		if coarse.Interactions != at || scalar.Interactions != at {
			t.Errorf("at=%d: consumed %d coarse / %d scalar", at, coarse.Interactions, scalar.Interactions)
		}
	}
}

// TestCoarseSteadyStateZeroAllocs extends the zero-allocation gate to the
// coarse path.
func TestCoarseSteadyStateZeroAllocs(t *testing.T) {
	const n = 32
	cfg := Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Box the adversary once: passing the struct value directly would
	// charge one interface-conversion allocation to every run.
	var adv Adversary = coarseOwnersAdv{seed: 7, badAt: -1}
	allocs := testing.AllocsPerRun(20, func() {
		if err := eng.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(gatherAlg{}, adv); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state coarse run allocates %v objects, want 0", allocs)
	}
}

// TestBadCoarseCountRejected pins the engine's defence against
// misbehaving NextCoarseBatch implementations.
func TestBadCoarseCountRejected(t *testing.T) {
	for _, over := range []int{batchSize + 1, -1} {
		eng, err := NewEngine(Config{N: 4, MaxInteractions: 10 * batchSize})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(waitAlg{}, badCoarseAdv{count: over}); err == nil {
			t.Errorf("NextCoarseBatch returning %d should fail", over)
		}
	}
}

type badCoarseAdv struct{ count int }

func (badCoarseAdv) Name() string { return "bad-coarse" }
func (badCoarseAdv) Next(int, ExecView) (seq.Interaction, bool) {
	return seq.Interaction{U: 0, V: 1}, true
}
func (a badCoarseAdv) NextCoarseBatch(_ int, _ WordView, buf []seq.Interaction) int {
	for i := range buf {
		buf[i] = seq.Interaction{U: 0, V: 1}
	}
	return a.count
}

// TestPrescreenBoth checks the word-parallel prescreen against the naive
// both-own test across batch lengths straddling word boundaries.
func TestPrescreenBoth(t *testing.T) {
	const n = 130
	src := rng.New(21)
	owns := bitset.New(n)
	for i := 0; i < n; i++ {
		if src.Intn(2) == 0 {
			owns.Add(i)
		}
	}
	words := owns.Words()
	for _, blen := range []int{0, 1, 63, 64, 65, 128, 200} {
		batch := make([]seq.Interaction, blen)
		for i := range batch {
			u, v := src.Pair(n)
			batch[i] = seq.Interaction{U: graph.NodeID(u), V: graph.NodeID(v)}
		}
		mask := make([]uint64, (blen+63)/64+1)
		mask[len(mask)-1] = ^uint64(0) // canary: must not be touched
		active := PrescreenBoth(words, batch, mask[:(blen+63)/64])
		want := 0
		for i, it := range batch {
			both := owns.Has(int(it.U)) && owns.Has(int(it.V))
			if both {
				want++
			}
			if got := mask[i>>6]&(1<<(uint(i)&63)) != 0; got != both {
				t.Errorf("blen=%d: mask bit %d = %v, want %v", blen, i, got, both)
			}
		}
		if active != want {
			t.Errorf("blen=%d: active = %d, want %d", blen, active, want)
		}
		// Tail bits beyond len(batch) in the last used word must be zero.
		if blen%64 != 0 && blen > 0 {
			last := mask[(blen-1)>>6]
			if last>>(uint(blen)&63) != 0 {
				t.Errorf("blen=%d: tail bits set in %#x", blen, last)
			}
		}
	}
}

// TestOwnerWordsTracksOwns runs a gathering to completion, checking at
// every adversary call that the packed words agree bit-for-bit with the
// boolean ownership view.
func TestOwnerWordsTracksOwns(t *testing.T) {
	const n = 100
	check := checkWordsAdv{inner: coarseOwnersAdv{seed: 17, badAt: -1}, t: t}
	eng, err := NewEngine(Config{N: n, MaxInteractions: 1 << 20, DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(gatherAlg{}, check)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	// After termination only the sink bit remains.
	if got := bitset.CountWords(eng.OwnerWords()); got != 1 {
		t.Errorf("post-termination OwnerWords count = %d", got)
	}
	if !bitset.TestWord(eng.OwnerWords(), int(eng.Sink())) {
		t.Error("sink bit not set after termination")
	}
}

type checkWordsAdv struct {
	inner coarseOwnersAdv
	t     *testing.T
}

func (checkWordsAdv) Name() string { return "check-words" }
func (a checkWordsAdv) Next(t int, view ExecView) (seq.Interaction, bool) {
	wv := view.(WordView)
	words := wv.OwnerWords()
	if got := bitset.CountWords(words); got != wv.OwnerCount() {
		a.t.Errorf("t=%d: word count %d != OwnerCount %d", t, got, wv.OwnerCount())
	}
	for u := 0; u < wv.N(); u++ {
		if bitset.TestWord(words, u) != wv.Owns(graph.NodeID(u)) {
			a.t.Errorf("t=%d: word bit %d disagrees with Owns", t, u)
		}
	}
	return a.inner.Next(t, view)
}
