package core

// Tests for the batched interaction pipeline and the provenance modes:
// the batched path must be observationally identical to the scalar path
// (results, errors, partial progress), stay allocation-free in steady
// state, and each provenance mode must keep exactly the verification it
// documents.

import (
	"fmt"
	"strings"
	"testing"

	"doda/internal/agg"
	"doda/internal/rng"
	"doda/internal/seq"
)

// batchGenAdv is genAdv plus NextBatch — the shape every oblivious
// adversary in the repository now has.
type batchGenAdv struct {
	gen func(t int) seq.Interaction
}

func (batchGenAdv) Name() string { return "uniform-gen" }
func (a batchGenAdv) Next(t int, _ ExecView) (seq.Interaction, bool) {
	return a.gen(t), true
}
func (a batchGenAdv) NextBatch(t int, _ ExecView, buf []seq.Interaction) int {
	for i := range buf {
		buf[i] = a.gen(t + i)
	}
	return len(buf)
}

// finiteBatchAdv emits a fixed sequence through both paths.
type finiteBatchAdv struct {
	steps []seq.Interaction
}

func (finiteBatchAdv) Name() string { return "finite" }
func (a finiteBatchAdv) Next(t int, _ ExecView) (seq.Interaction, bool) {
	if t >= len(a.steps) {
		return seq.Interaction{}, false
	}
	return a.steps[t], true
}
func (a finiteBatchAdv) NextBatch(t int, _ ExecView, buf []seq.Interaction) int {
	k := 0
	for ; k < len(buf) && t+k < len(a.steps); k++ {
		buf[k] = a.steps[t+k]
	}
	return k
}

// sameResult compares every Result field, including the sink value and
// (when both present) its provenance set.
func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Algorithm != want.Algorithm || got.Adversary != want.Adversary ||
		got.Terminated != want.Terminated || got.Failed != want.Failed ||
		got.FailReason != want.FailReason ||
		got.Duration != want.Duration || got.Interactions != want.Interactions ||
		got.Transmissions != want.Transmissions || got.Declined != want.Declined ||
		got.LastGap != want.LastGap {
		t.Errorf("%s: result %+v != %+v", label, got, want)
	}
	if got.SinkValue.Num != want.SinkValue.Num || got.SinkValue.Count != want.SinkValue.Count {
		t.Errorf("%s: sink value (%v,%d) != (%v,%d)", label,
			got.SinkValue.Num, got.SinkValue.Count, want.SinkValue.Num, want.SinkValue.Count)
	}
	gotO, wantO := got.SinkValue.Origins, want.SinkValue.Origins
	if (gotO == nil) != (wantO == nil) {
		t.Errorf("%s: provenance presence differs: %v vs %v", label, gotO, wantO)
	} else if gotO != nil && !gotO.Equal(wantO) {
		t.Errorf("%s: provenance %v != %v", label, gotO, wantO)
	}
}

// runBatchedAndScalar plays the same seeded workload through both engine
// paths with fresh generators and returns (batched, scalar).
func runBatchedAndScalar(t *testing.T, cfg Config, seed uint64) (Result, Result) {
	t.Helper()
	out := make([]Result, 2)
	for i, disable := range []bool{false, true} {
		c := cfg
		c.DisableBatch = disable
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(gatherAlg{}, batchGenAdv{gen: seq.UniformGen(c.N, rng.New(seed))})
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		out[i] = res
	}
	return out[0], out[1]
}

// TestBatchedMatchesScalar is the core differential gate: identical
// Results from the batched and scalar paths across sizes that exercise
// sub-batch, exact-batch and multi-batch runs, aggregation functions, and
// all three provenance modes.
func TestBatchedMatchesScalar(t *testing.T) {
	for _, n := range []int{4, 16, 65, 192} {
		for _, fu := range []agg.Func{agg.Min, agg.Sum} {
			for _, mode := range []ProvenanceMode{ProvenanceFull, ProvenanceCount, ProvenanceOff} {
				cfg := Config{
					N: n, Agg: fu, MaxInteractions: 400*n*n + 4000,
					VerifyAggregate: true, Provenance: mode,
				}
				batched, scalar := runBatchedAndScalar(t, cfg, uint64(n)*7+uint64(mode))
				label := fmt.Sprintf("n=%d agg=%s prov=%v", n, fu.Name(), mode)
				sameResult(t, label, batched, scalar)
				if !batched.Terminated {
					t.Errorf("%s: did not terminate", label)
				}
				if mode == ProvenanceFull && !batched.SinkValue.Origins.Full() {
					t.Errorf("%s: full mode must report full provenance", label)
				}
				if mode != ProvenanceFull && batched.SinkValue.Origins != nil {
					t.Errorf("%s: non-full mode must not report origins", label)
				}
			}
		}
	}
}

// TestBatchedInteractionCapMidBatch pins the cap semantics: the batched
// loop must consume exactly MaxInteractions even when the cap falls in
// the middle of a batch.
func TestBatchedInteractionCapMidBatch(t *testing.T) {
	const n = 256 // large enough that tiny caps never terminate
	for _, cap := range []int{1, batchSize - 1, batchSize, batchSize + 1, 3*batchSize + 17} {
		cfg := Config{N: n, MaxInteractions: cap}
		batched, scalar := runBatchedAndScalar2(t, cfg, 99)
		if batched.Interactions != cap || scalar.Interactions != cap {
			t.Errorf("cap=%d: consumed %d batched / %d scalar", cap, batched.Interactions, scalar.Interactions)
		}
		sameResult(t, fmt.Sprintf("cap=%d", cap), batched, scalar)
	}
}

// runBatchedAndScalar2 is runBatchedAndScalar without the termination
// requirement (capped runs legitimately stop early).
func runBatchedAndScalar2(t *testing.T, cfg Config, seed uint64) (Result, Result) {
	t.Helper()
	out := make([]Result, 2)
	for i, disable := range []bool{false, true} {
		c := cfg
		c.DisableBatch = disable
		eng, err := NewEngine(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(waitAlg{}, batchGenAdv{gen: seq.UniformGen(c.N, rng.New(seed))})
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		out[i] = res
	}
	return out[0], out[1]
}

// waitAlg never transfers, so capped runs never terminate.
type waitAlg struct{}

func (waitAlg) Name() string                               { return "wait" }
func (waitAlg) Oblivious() bool                            { return true }
func (waitAlg) Setup(*Env) error                           { return nil }
func (waitAlg) Decide(*Env, seq.Interaction, int) Decision { return NoTransfer }

// TestBatchedExhaustionMatchesScalar checks finite sequences ending at
// every offset relative to the batch size.
func TestBatchedExhaustionMatchesScalar(t *testing.T) {
	const n = 64
	for _, length := range []int{0, 1, batchSize - 1, batchSize, batchSize + 3} {
		gen := seq.UniformGen(n, rng.New(3))
		steps := make([]seq.Interaction, length)
		for i := range steps {
			steps[i] = gen(i)
		}
		adv := finiteBatchAdv{steps: steps}
		cfg := Config{N: n, MaxInteractions: 1 << 20}
		var results [2]Result
		for i, disable := range []bool{false, true} {
			c := cfg
			c.DisableBatch = disable
			eng, err := NewEngine(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(waitAlg{}, adv)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		if results[0].Interactions != length {
			t.Errorf("length=%d: batched consumed %d", length, results[0].Interactions)
		}
		sameResult(t, fmt.Sprintf("length=%d", length), results[0], results[1])
	}
}

// TestBatchedErrorParity feeds an invalid interaction at various offsets
// and demands the exact error and partial progress of the scalar path.
func TestBatchedErrorParity(t *testing.T) {
	const n = 16
	for _, bad := range []seq.Interaction{{U: 3, V: 3}, {U: -2, V: 5}, {U: 2, V: 16}, {U: 40, V: 2}} {
		for _, at := range []int{0, 7, batchSize, batchSize + 5} {
			mk := func() batchGenAdv {
				inner := seq.UniformGen(n, rng.New(11))
				return batchGenAdv{gen: func(t int) seq.Interaction {
					if t == at {
						return bad
					}
					return inner(t)
				}}
			}
			var errs [2]string
			var results [2]Result
			for i, disable := range []bool{false, true} {
				cfg := Config{N: n, MaxInteractions: 1 << 20, DisableBatch: disable}
				eng, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := eng.Run(waitAlg{}, mk())
				if err == nil {
					t.Fatalf("bad=%v at=%d disable=%v: expected error", bad, at, disable)
				}
				errs[i] = err.Error()
				results[i] = res
			}
			if errs[0] != errs[1] {
				t.Errorf("bad=%v at=%d: batched error %q != scalar %q", bad, at, errs[0], errs[1])
			}
			if !strings.Contains(errs[0], fmt.Sprintf("t=%d", at)) {
				t.Errorf("bad=%v at=%d: error %q does not name the offending time", bad, at, errs[0])
			}
			if results[0].Interactions != at || results[1].Interactions != at {
				t.Errorf("bad=%v at=%d: consumed %d batched / %d scalar, want %d",
					bad, at, results[0].Interactions, results[1].Interactions, at)
			}
		}
	}
}

// TestBatchedSteadyStateZeroAllocs extends the zero-allocation gate to
// the batched path: after the first run warms the engine (including the
// batch buffer), a whole Reset+Run cycle must report 0 allocs for every
// provenance mode.
func TestBatchedSteadyStateZeroAllocs(t *testing.T) {
	const n = 32
	for _, mode := range []ProvenanceMode{ProvenanceFull, ProvenanceCount, ProvenanceOff} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true, Provenance: mode}
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			adv := batchGenAdv{gen: seq.UniformGen(n, rng.New(7))}
			allocs := testing.AllocsPerRun(20, func() {
				if err := eng.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Run(gatherAlg{}, adv); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%v: steady-state batched run allocates %v objects, want 0", mode, allocs)
			}
		})
	}
}

// TestBadBatchCountRejected pins the engine's defence against misbehaving
// NextBatch implementations.
func TestBadBatchCountRejected(t *testing.T) {
	for _, over := range []int{batchSize + 1, -1} {
		adv := badCountAdv{count: over}
		eng, err := NewEngine(Config{N: 4, MaxInteractions: 10 * batchSize})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(waitAlg{}, adv); err == nil {
			t.Errorf("NextBatch returning %d should fail", over)
		}
	}
}

type badCountAdv struct{ count int }

func (badCountAdv) Name() string { return "bad-count" }
func (badCountAdv) Next(int, ExecView) (seq.Interaction, bool) {
	return seq.Interaction{U: 0, V: 1}, true
}
func (a badCountAdv) NextBatch(_ int, _ ExecView, buf []seq.Interaction) int {
	for i := range buf {
		buf[i] = seq.Interaction{U: 0, V: 1}
	}
	return a.count
}

// TestProvenanceModeParsing pins the mode names the CLIs and sweep cells
// use.
func TestProvenanceModeParsing(t *testing.T) {
	for _, mode := range []ProvenanceMode{ProvenanceFull, ProvenanceCount, ProvenanceOff} {
		got, err := ParseProvenanceMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseProvenanceMode(%q) = %v, %v", mode.String(), got, err)
		}
	}
	if _, err := ParseProvenanceMode("auto"); err == nil {
		t.Error(`"auto" is a sweep-level choice, not an engine mode; parsing it must fail`)
	}
	if err := (&Engine{}).Reset(Config{N: 4, MaxInteractions: 10, Provenance: ProvenanceMode(9)}); err == nil {
		t.Error("invalid provenance mode must be rejected by Reset")
	}
}

// TestProvenanceModeSwitchAcrossResets runs full → count → full on one
// engine: the count run must not see stale origin sets, and the second
// full run must behave exactly like the first.
func TestProvenanceModeSwitchAcrossResets(t *testing.T) {
	const n = 24
	eng := &Engine{}
	run := func(mode ProvenanceMode) Result {
		t.Helper()
		cfg := Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true, Provenance: mode}
		if err := eng.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(gatherAlg{}, batchGenAdv{gen: seq.UniformGen(n, rng.New(42))})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Terminated {
			t.Fatalf("mode %v: did not terminate", mode)
		}
		return res
	}
	full1 := run(ProvenanceFull)
	count := run(ProvenanceCount)
	full2 := run(ProvenanceFull)
	if count.SinkValue.Origins != nil {
		t.Errorf("count mode leaked origins %v", count.SinkValue.Origins)
	}
	sameResult(t, "full-after-count", full2, full1)
	if full1.Duration != count.Duration || full1.Interactions != count.Interactions {
		t.Errorf("provenance mode changed the execution: %+v vs %+v", full1, count)
	}
}

// FuzzBatchedVsScalar fuzzes the differential property over seeds, sizes
// and provenance modes.
func FuzzBatchedVsScalar(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(0))
	f.Add(uint64(2), uint8(3), uint8(1))
	f.Add(uint64(3), uint8(200), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, modeRaw uint8) {
		n := int(nRaw%120) + 2
		mode := ProvenanceMode(modeRaw % 3)
		cfg := Config{
			N: n, MaxInteractions: 400*n*n + 4000,
			VerifyAggregate: true, Provenance: mode,
		}
		batched, scalar := runBatchedAndScalar(t, cfg, seed)
		sameResult(t, fmt.Sprintf("seed=%d n=%d mode=%v", seed, n, mode), batched, scalar)
	})
}
