package core

// Push-mode execution: the serving layer owns the clock and feeds the
// engine one interaction at a time, instead of the engine pulling a whole
// sequence out of an Adversary. Begin/Feed/Finish share the exact step
// body the pull loops use, so a fed stream and an adversary-driven run of
// the same interactions produce identical Results (differentially
// tested). StateSnapshot/RestoreStream make a fed execution durable: the
// snapshot is a pure-data document that, restored into a fresh engine,
// continues the run byte-identically — the contract internal/serve's
// write-ahead log is built on.

import (
	"fmt"
	"sort"

	"doda/internal/agg"
	"doda/internal/bitset"
	"doda/internal/seq"
)

// stream is the engine's push-mode execution state.
type stream struct {
	alg      Algorithm
	observer Observer
	observes bool
	res      Result
	t        int
	begun    bool
	done     bool
	finished bool
}

// Begin arms the engine for push-mode execution of alg: Setup runs now,
// and each subsequent Feed plays one interaction. Like Run, a begun
// engine is consumed — Reset re-arms it. The Result's Adversary field
// reads "stream": in push mode the interaction source lives outside the
// engine.
func (e *Engine) Begin(alg Algorithm) error {
	if alg == nil {
		return fmt.Errorf("core: nil algorithm")
	}
	if e.used {
		return fmt.Errorf("core: engine already ran; Reset it (or create a new one) first")
	}
	e.used = true
	if alg.Oblivious() {
		e.env.State = nil
	}
	if err := alg.Setup(e.env); err != nil {
		return fmt.Errorf("core: setup of %s: %w", alg.Name(), err)
	}
	observer, observes := alg.(Observer)
	e.str = stream{
		alg:      alg,
		observer: observer,
		observes: observes,
		res:      Result{Algorithm: alg.Name(), Adversary: "stream", Duration: -1},
		begun:    true,
	}
	return nil
}

// Feed plays one interaction at the next time index. done latches true
// once the run is over — termination, failure, a model violation, or the
// MaxInteractions horizon — and later Feeds are ignored (still done, nil
// error), so a caller draining a queue does not need to special-case the
// boundary. The returned error reports the same engine and model
// violations Run surfaces.
func (e *Engine) Feed(it seq.Interaction) (done bool, err error) {
	if !e.str.begun {
		return false, fmt.Errorf("core: Feed before Begin")
	}
	if e.str.done {
		return true, nil
	}
	if e.str.t >= e.cfg.MaxInteractions {
		e.str.done = true
		return true, nil
	}
	canon, err := seq.NewInteraction(it.U, it.V)
	if err != nil {
		e.str.done = true
		return true, fmt.Errorf("core: fed at t=%d: %w", e.str.t, err)
	}
	if int(canon.V) >= e.cfg.N {
		e.str.done = true
		return true, fmt.Errorf("core: fed at t=%d: interaction %v out of range", e.str.t, canon)
	}
	e.str.res.Interactions++
	over, err := e.step(e.str.alg, e.str.observer, e.str.observes, e.cfg.Events, canon, e.str.t, &e.str.res)
	e.str.t++
	if err != nil {
		e.str.done = true
		return true, err
	}
	if over {
		e.str.done = true
	} else if e.str.t >= e.cfg.MaxInteractions {
		e.str.done = true
		over = true
	}
	return e.str.done, nil
}

// StreamResult snapshots the push-mode result so far, without ending the
// run. Terminated runs' SinkValue is only attached by Finish.
func (e *Engine) StreamResult() Result {
	return e.str.res
}

// StreamT returns the next time index a Feed would play at — equal to the
// number of interactions fed so far.
func (e *Engine) StreamT() int { return e.str.t }

// StreamDone reports whether the push-mode run is over.
func (e *Engine) StreamDone() bool { return e.str.done }

// Finish ends the push-mode run: it runs the same terminal verification
// Run performs (sink value, provenance, transmission count) and fires the
// EventSink's OnDone once. Finish is idempotent; it may also be called
// before done latches, to close an execution early (the result is then
// simply unterminated).
func (e *Engine) Finish() (Result, error) {
	if !e.str.begun {
		return Result{}, fmt.Errorf("core: Finish before Begin")
	}
	e.str.done = true
	if e.str.finished {
		return e.str.res, nil
	}
	e.str.finished = true
	if e.str.res.Terminated {
		e.str.res.SinkValue = e.data[e.cfg.Sink]
		if err := e.verify(e.str.res); err != nil {
			return e.str.res, err
		}
	}
	if e.cfg.Events != nil {
		e.cfg.Events.OnDone(e.str.res)
	}
	return e.str.res, nil
}

// ValueState is one owner's datum in an EngineState: the payload, the
// fold count, and (under full provenance) the origin node ids.
type ValueState struct {
	Num     float64 `json:"num"`
	Count   int     `json:"count"`
	Origins []int   `json:"origins,omitempty"`
}

// ResultState carries a Result's counters through JSON (SinkValue stays
// behind: it aliases engine-owned bitsets and is rebuilt by Finish).
type ResultState struct {
	Algorithm     string `json:"algorithm"`
	Terminated    bool   `json:"terminated,omitempty"`
	Failed        bool   `json:"failed,omitempty"`
	FailReason    string `json:"fail_reason,omitempty"`
	Duration      int    `json:"duration"`
	Interactions  int    `json:"interactions"`
	Transmissions int    `json:"transmissions"`
	Declined      int    `json:"declined"`
	LastGap       int    `json:"last_gap"`
}

// EngineState is a serializable snapshot of a push-mode execution:
// everything that determines how the run evolves under future Feeds and
// what Finish reports. It is pure data (no maps), so its JSON encoding is
// deterministic — two executions in the same state marshal to the same
// bytes, which is how the serving layer's recovery tests assert
// byte-identical restarts.
type EngineState struct {
	N          int    `json:"n"`
	Sink       int    `json:"sink"`
	Provenance string `json:"provenance"`
	T          int    `json:"t"`
	Done       bool   `json:"done,omitempty"`
	// Owners lists the nodes still owning data, ascending; Data[i] is
	// Owners[i]'s datum.
	Owners []int        `json:"owners"`
	Data   []ValueState `json:"data"`
	Result ResultState  `json:"result"`
}

// StateSnapshot captures the push-mode execution as pure data. Only
// oblivious algorithms are snapshottable: stateful ones keep arbitrary
// values in Env.State that no generic encoding can carry.
func (e *Engine) StateSnapshot() (EngineState, error) {
	if !e.str.begun {
		return EngineState{}, fmt.Errorf("core: StateSnapshot before Begin")
	}
	if !e.str.alg.Oblivious() {
		return EngineState{}, fmt.Errorf("core: %s is stateful; only oblivious algorithms are snapshottable", e.str.alg.Name())
	}
	st := EngineState{
		N:          e.cfg.N,
		Sink:       int(e.cfg.Sink),
		Provenance: e.cfg.Provenance.String(),
		T:          e.str.t,
		Done:       e.str.done,
		Result: ResultState{
			Algorithm:     e.str.res.Algorithm,
			Terminated:    e.str.res.Terminated,
			Failed:        e.str.res.Failed,
			FailReason:    e.str.res.FailReason,
			Duration:      e.str.res.Duration,
			Interactions:  e.str.res.Interactions,
			Transmissions: e.str.res.Transmissions,
			Declined:      e.str.res.Declined,
			LastGap:       e.str.res.LastGap,
		},
	}
	for u := 0; u < e.cfg.N; u++ {
		if !e.owns[u] {
			continue
		}
		v := ValueState{Num: e.data[u].Num, Count: e.data[u].Count}
		if e.data[u].Origins != nil {
			v.Origins = e.data[u].Origins.Members()
			sort.Ints(v.Origins)
		}
		st.Owners = append(st.Owners, u)
		st.Data = append(st.Data, v)
	}
	return st, nil
}

// RestoreStream resets the engine under cfg, Begins alg, and overwrites
// the fresh state with st, so the next Feed continues the snapshotted
// execution exactly. The snapshot must have been taken under the same
// (N, sink, provenance) configuration and an oblivious algorithm.
func (e *Engine) RestoreStream(cfg Config, alg Algorithm, st EngineState) error {
	if alg == nil {
		return fmt.Errorf("core: nil algorithm")
	}
	if !alg.Oblivious() {
		return fmt.Errorf("core: %s is stateful; only oblivious algorithms are restorable", alg.Name())
	}
	if st.N != cfg.N {
		return fmt.Errorf("core: snapshot is for n=%d, config has n=%d", st.N, cfg.N)
	}
	if st.Sink != int(cfg.Sink) {
		return fmt.Errorf("core: snapshot is for sink %d, config has sink %d", st.Sink, cfg.Sink)
	}
	if got := cfg.Provenance.String(); st.Provenance != got {
		return fmt.Errorf("core: snapshot provenance %q, config has %q", st.Provenance, got)
	}
	if len(st.Owners) != len(st.Data) {
		return fmt.Errorf("core: snapshot has %d owners but %d data", len(st.Owners), len(st.Data))
	}
	if err := e.Reset(cfg); err != nil {
		return err
	}
	if err := e.Begin(alg); err != nil {
		return err
	}
	full := cfg.Provenance == ProvenanceFull
	for u := 0; u < cfg.N; u++ {
		e.owns[u] = false
		e.data[u] = agg.Value{}
	}
	for i := range e.ownWords {
		e.ownWords[i] = 0
	}
	prev := -1
	for i, u := range st.Owners {
		if u < 0 || u >= cfg.N {
			return fmt.Errorf("core: snapshot owner %d out of range [0,%d)", u, cfg.N)
		}
		if u <= prev {
			return fmt.Errorf("core: snapshot owners not strictly ascending at %d", u)
		}
		prev = u
		var set *bitset.Set
		if full {
			set = e.origins[u]
			set.Clear()
			for _, o := range st.Data[i].Origins {
				if o < 0 || o >= cfg.N {
					return fmt.Errorf("core: snapshot origin %d out of range [0,%d)", o, cfg.N)
				}
				set.Add(o)
			}
		}
		e.owns[u] = true
		bitset.SetWordBit(e.ownWords, u)
		e.data[u] = agg.Value{Num: st.Data[i].Num, Count: st.Data[i].Count, Origins: set}
	}
	e.nOwn = len(st.Owners)
	e.str.t = st.T
	e.str.done = st.Done
	e.str.res = Result{
		Algorithm:     st.Result.Algorithm,
		Adversary:     "stream",
		Terminated:    st.Result.Terminated,
		Failed:        st.Result.Failed,
		FailReason:    st.Result.FailReason,
		Duration:      st.Result.Duration,
		Interactions:  st.Result.Interactions,
		Transmissions: st.Result.Transmissions,
		Declined:      st.Result.Declined,
		LastGap:       st.Result.LastGap,
	}
	return nil
}
