package core

// Tests for the zero-allocation hot path: Engine.Reset reuse must be
// observationally identical to building fresh engines, and the
// steady-state interaction loop must not allocate.

import (
	"testing"

	"doda/internal/agg"
	"doda/internal/rng"
	"doda/internal/seq"
)

// genAdv feeds a generator's interactions straight to the engine — the
// allocation-free adversary shape the sweep engine uses (the adversary
// package's Generated type; duplicated minimally here because core cannot
// import adversary).
type genAdv struct {
	gen func(t int) seq.Interaction
}

func (genAdv) Name() string { return "uniform-gen" }
func (a genAdv) Next(t int, _ ExecView) (seq.Interaction, bool) {
	return a.gen(t), true
}

// gatherAlg is a minimal Gathering: transfer to the sink when present,
// else to the first endpoint. Allocation-free Decide.
type gatherAlg struct{}

func (gatherAlg) Name() string     { return "gather" }
func (gatherAlg) Oblivious() bool  { return true }
func (gatherAlg) Setup(*Env) error { return nil }
func (gatherAlg) Decide(env *Env, it seq.Interaction, _ int) Decision {
	switch env.Sink {
	case it.U:
		return FirstReceives
	case it.V:
		return SecondReceives
	default:
		return FirstReceives
	}
}

// TestResetReuseIdenticalResults replays the same seeded workloads on a
// fresh engine and on one engine reused (Reset) across all of them — with
// node counts going up and down to force and then bypass reallocation —
// and demands byte-identical Results, provenance included.
func TestResetReuseIdenticalResults(t *testing.T) {
	cases := []struct {
		n    int
		agg  agg.Func
		seed uint64
	}{
		{n: 16, agg: agg.Min, seed: 1},
		{n: 65, agg: agg.Sum, seed: 2}, // crosses a bitset word boundary
		{n: 8, agg: agg.Max, seed: 3},  // shrink: reuse larger slices
		{n: 16, agg: agg.Sum, seed: 4}, // grow again within capacity
	}
	reused := &Engine{}
	for _, tc := range cases {
		cfg := Config{N: tc.n, Agg: tc.agg, MaxInteractions: 400*tc.n*tc.n + 4000, VerifyAggregate: true}
		run := func(e *Engine) Result {
			t.Helper()
			res, err := e.Run(gatherAlg{}, genAdv{gen: seq.UniformGen(tc.n, rng.New(tc.seed))})
			if err != nil {
				t.Fatalf("n=%d: %v", tc.n, err)
			}
			if !res.Terminated {
				t.Fatalf("n=%d: did not terminate", tc.n)
			}
			return res
		}
		fresh, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := run(fresh)
		if err := reused.Reset(cfg); err != nil {
			t.Fatal(err)
		}
		got := run(reused)

		// Compare every field; SinkValue needs structural comparison
		// because the provenance sets are distinct objects.
		if got.Algorithm != want.Algorithm || got.Adversary != want.Adversary ||
			got.Terminated != want.Terminated || got.Failed != want.Failed ||
			got.Duration != want.Duration || got.Interactions != want.Interactions ||
			got.Transmissions != want.Transmissions || got.Declined != want.Declined ||
			got.LastGap != want.LastGap {
			t.Errorf("n=%d: reused engine result %+v != fresh %+v", tc.n, got, want)
		}
		if got.SinkValue.Num != want.SinkValue.Num || got.SinkValue.Count != want.SinkValue.Count {
			t.Errorf("n=%d: sink value (%v,%d) != (%v,%d)", tc.n,
				got.SinkValue.Num, got.SinkValue.Count, want.SinkValue.Num, want.SinkValue.Count)
		}
		if !got.SinkValue.Origins.Equal(want.SinkValue.Origins) || !got.SinkValue.Origins.Full() {
			t.Errorf("n=%d: provenance %v != %v", tc.n, got.SinkValue.Origins, want.SinkValue.Origins)
		}
	}
}

// TestEngineSteadyStateZeroAllocs is the acceptance gate for the
// zero-allocation hot path: after the first Reset warms the engine's
// recycled storage, a whole Reset+Run cycle — and therefore every
// steady-state interaction — must report 0 allocs for min, max and sum
// under the uniform adversary.
func TestEngineSteadyStateZeroAllocs(t *testing.T) {
	const n = 32
	for _, fu := range []agg.Func{agg.Min, agg.Max, agg.Sum} {
		t.Run(fu.Name(), func(t *testing.T) {
			cfg := Config{N: n, Agg: fu, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true}
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			adv := genAdv{gen: seq.UniformGen(n, rng.New(7))}
			allocs := testing.AllocsPerRun(20, func() {
				if err := eng.Reset(cfg); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Run(gatherAlg{}, adv); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s: steady-state run allocates %v objects, want 0", fu.Name(), allocs)
			}
		})
	}
}

// TestEngineRequiresResetBetweenRuns pins the one-run-per-arm contract.
func TestEngineRequiresResetBetweenRuns(t *testing.T) {
	cfg := Config{N: 4, MaxInteractions: 100}
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adv := genAdv{gen: seq.UniformGen(4, rng.New(1))}
	if _, err := eng.Run(gatherAlg{}, adv); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(gatherAlg{}, adv); err == nil {
		t.Error("second Run without Reset should fail")
	}
	if err := eng.Reset(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(gatherAlg{}, adv); err != nil {
		t.Errorf("Run after Reset: %v", err)
	}
}

// TestResetRejectsBadConfigAndSurvives checks that a failed Reset leaves
// the engine re-armable.
func TestResetRejectsBadConfigAndSurvives(t *testing.T) {
	eng, err := NewEngine(Config{N: 4, MaxInteractions: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{N: 1, MaxInteractions: 10},
		{N: 4, MaxInteractions: 0},
		{N: 4, Sink: 9, MaxInteractions: 10},
		{N: 4, MaxInteractions: 10, Payloads: []float64{1}},
	} {
		if err := eng.Reset(bad); err == nil {
			t.Errorf("Reset(%+v) should fail", bad)
		}
	}
	if err := eng.Reset(Config{N: 4, MaxInteractions: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(gatherAlg{}, genAdv{gen: seq.UniformGen(4, rng.New(2))}); err != nil {
		t.Errorf("Run after recovered Reset: %v", err)
	}
}
