package core

import (
	"strings"
	"testing"

	"doda/internal/agg"
	"doda/internal/graph"
	"doda/internal/seq"
)

// scriptAlg transfers according to a fixed map time -> receiver.
type scriptAlg struct {
	receivers map[int]graph.NodeID
}

func (scriptAlg) Name() string     { return "script" }
func (scriptAlg) Oblivious() bool  { return true }
func (scriptAlg) Setup(*Env) error { return nil }
func (a scriptAlg) Decide(_ *Env, it seq.Interaction, t int) Decision {
	r, ok := a.receivers[t]
	if !ok {
		return NoTransfer
	}
	return DecisionFor(it, r)
}

// seqAdv plays a fixed finite sequence.
type seqAdv struct {
	steps []seq.Interaction
}

func (seqAdv) Name() string { return "fixed" }
func (a seqAdv) Next(t int, _ ExecView) (seq.Interaction, bool) {
	if t >= len(a.steps) {
		return seq.Interaction{}, false
	}
	return a.steps[t], true
}

func TestDecisionResolution(t *testing.T) {
	it := seq.MustInteraction(2, 5)
	tests := []struct {
		d            Decision
		wantRecv     graph.NodeID
		wantSend     graph.NodeID
		wantTransfer bool
	}{
		{d: FirstReceives, wantRecv: 2, wantSend: 5, wantTransfer: true},
		{d: SecondReceives, wantRecv: 5, wantSend: 2, wantTransfer: true},
		{d: NoTransfer, wantTransfer: false},
	}
	for _, tt := range tests {
		r, ok := tt.d.Receiver(it)
		s, ok2 := tt.d.Sender(it)
		if ok != tt.wantTransfer || ok2 != tt.wantTransfer {
			t.Errorf("%v: transfer flags %v/%v", tt.d, ok, ok2)
		}
		if ok && (r != tt.wantRecv || s != tt.wantSend) {
			t.Errorf("%v: recv=%d send=%d", tt.d, r, s)
		}
	}
}

func TestDecisionFor(t *testing.T) {
	it := seq.MustInteraction(2, 5)
	if DecisionFor(it, 2) != FirstReceives {
		t.Error("DecisionFor(2)")
	}
	if DecisionFor(it, 5) != SecondReceives {
		t.Error("DecisionFor(5)")
	}
	if DecisionFor(it, 9) != NoTransfer {
		t.Error("DecisionFor(non-endpoint)")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		NoTransfer: "⊥", FirstReceives: "first", SecondReceives: "second", Decision(9): "Decision(9)",
	} {
		if got := d.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(d), got, want)
		}
	}
}

func TestEngineTerminatesChain(t *testing.T) {
	// 2 -> 1 at t=0, 1 -> 0 (sink) at t=1.
	cfg := Config{N: 3, MaxInteractions: 10, VerifyAggregate: true}
	alg := scriptAlg{receivers: map[int]graph.NodeID{0: 1, 1: 0}}
	adv := seqAdv{steps: []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}}}
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("should terminate")
	}
	if res.Duration != 1 || res.Interactions != 2 || res.Transmissions != 2 {
		t.Errorf("res = %+v", res)
	}
	// Default payloads are node ids, default agg is min: sink value 0.
	if res.SinkValue.Num != 0 || res.SinkValue.Count != 3 {
		t.Errorf("sink value = %+v", res.SinkValue)
	}
	if res.Algorithm != "script" || res.Adversary != "fixed" {
		t.Errorf("names = %q/%q", res.Algorithm, res.Adversary)
	}
}

func TestEngineSequenceExhaustion(t *testing.T) {
	cfg := Config{N: 3, MaxInteractions: 100}
	alg := scriptAlg{receivers: nil} // never transfers
	adv := seqAdv{steps: []seq.Interaction{{U: 1, V: 2}}}
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminated || res.Failed {
		t.Errorf("res = %+v", res)
	}
	if res.Interactions != 1 || res.Declined != 1 || res.Duration != -1 {
		t.Errorf("res = %+v", res)
	}
}

func TestEngineInteractionCap(t *testing.T) {
	cfg := Config{N: 3, MaxInteractions: 7}
	alg := scriptAlg{}
	// Infinite adversary.
	adv := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
		return seq.Interaction{U: 1, V: 2}, true
	})
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interactions != 7 || res.Terminated {
		t.Errorf("res = %+v", res)
	}
}

type advFunc func(t int, v ExecView) (seq.Interaction, bool)

func (advFunc) Name() string                                     { return "func" }
func (f advFunc) Next(t int, v ExecView) (seq.Interaction, bool) { return f(t, v) }

func TestEngineSinkTransmitsFails(t *testing.T) {
	cfg := Config{N: 3, MaxInteractions: 10}
	// At t=0, node 1 receives from the sink 0: unwinnable.
	alg := scriptAlg{receivers: map[int]graph.NodeID{0: 1}}
	adv := seqAdv{steps: []seq.Interaction{{U: 0, V: 1}, {U: 1, V: 2}}}
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Terminated {
		t.Errorf("res = %+v", res)
	}
	if !strings.Contains(res.FailReason, "sink") {
		t.Errorf("FailReason = %q", res.FailReason)
	}
	if res.Interactions != 1 {
		t.Errorf("should stop immediately, consumed %d", res.Interactions)
	}
}

func TestEngineTransferBetweenNonOwnersNotOffered(t *testing.T) {
	// After 2 transmits to 1 at t=0, interaction {1,2} at t=1 must not
	// consult the algorithm (2 owns nothing); a scripted transfer at t=1
	// is simply ignored.
	calls := 0
	alg := countingAlg{onDecide: func(it seq.Interaction, t int) Decision {
		calls++
		if t == 0 {
			return FirstReceives // 2 -> 1
		}
		return FirstReceives // would be 2 -> 1 again: must never be asked
	}}
	adv := seqAdv{steps: []seq.Interaction{{U: 1, V: 2}, {U: 1, V: 2}}}
	res, err := RunOnce(Config{N: 3, MaxInteractions: 10}, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("Decide called %d times, want 1", calls)
	}
	if res.Transmissions != 1 {
		t.Errorf("res = %+v", res)
	}
}

type countingAlg struct {
	onDecide func(it seq.Interaction, t int) Decision
}

func (countingAlg) Name() string     { return "counting" }
func (countingAlg) Oblivious() bool  { return true }
func (countingAlg) Setup(*Env) error { return nil }
func (a countingAlg) Decide(_ *Env, it seq.Interaction, t int) Decision {
	return a.onDecide(it, t)
}

func TestEngineLastGap(t *testing.T) {
	// Transmissions at t=0 and t=4: gap = 3 interactions between them.
	cfg := Config{N: 3, MaxInteractions: 10}
	alg := scriptAlg{receivers: map[int]graph.NodeID{0: 0, 4: 0}}
	adv := seqAdv{steps: []seq.Interaction{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 2}, {U: 1, V: 2}, {U: 0, V: 2},
	}}
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("res = %+v", res)
	}
	if res.LastGap != 3 {
		t.Errorf("LastGap = %d, want 3", res.LastGap)
	}
}

func TestEngineAggregation(t *testing.T) {
	tests := []struct {
		name     string
		f        agg.Func
		payloads []float64
		want     float64
	}{
		{name: "min", f: agg.Min, payloads: []float64{5, 3, 9}, want: 3},
		{name: "max", f: agg.Max, payloads: []float64{5, 3, 9}, want: 9},
		{name: "sum", f: agg.Sum, payloads: []float64{5, 3, 9}, want: 17},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := Config{
				N: 3, MaxInteractions: 10, Agg: tt.f,
				Payloads: tt.payloads, VerifyAggregate: true,
			}
			alg := scriptAlg{receivers: map[int]graph.NodeID{0: 1, 1: 0}}
			adv := seqAdv{steps: []seq.Interaction{{U: 1, V: 2}, {U: 0, V: 1}}}
			res, err := RunOnce(cfg, alg, adv)
			if err != nil {
				t.Fatal(err)
			}
			if res.SinkValue.Num != tt.want {
				t.Errorf("sink = %v, want %v", res.SinkValue.Num, tt.want)
			}
		})
	}
}

func TestEngineConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "too few nodes", cfg: Config{N: 1, MaxInteractions: 5}},
		{name: "bad sink", cfg: Config{N: 3, Sink: 5, MaxInteractions: 5}},
		{name: "no cap", cfg: Config{N: 3}},
		{name: "payload mismatch", cfg: Config{N: 3, MaxInteractions: 5, Payloads: []float64{1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEngine(tt.cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestEngineSingleUse(t *testing.T) {
	e, err := NewEngine(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	alg := scriptAlg{}
	adv := seqAdv{}
	if _, err := e.Run(alg, adv); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(alg, adv); err == nil {
		t.Error("second Run should fail")
	}
}

func TestEngineNilParticipants(t *testing.T) {
	e, err := NewEngine(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(nil, seqAdv{}); err == nil {
		t.Error("nil algorithm should fail")
	}
}

func TestEngineRejectsBadAdversaryInteraction(t *testing.T) {
	cfg := Config{N: 3, MaxInteractions: 10}
	alg := scriptAlg{}
	adv := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
		return seq.Interaction{U: 1, V: 1}, true // self-loop
	})
	if _, err := RunOnce(cfg, alg, adv); err == nil {
		t.Error("self-interaction should error")
	}
	adv2 := advFunc(func(t int, _ ExecView) (seq.Interaction, bool) {
		return seq.Interaction{U: 0, V: 9}, true // out of range
	})
	if _, err := RunOnce(cfg, alg, adv2); err == nil {
		t.Error("out-of-range interaction should error")
	}
}

func TestEngineExecView(t *testing.T) {
	e, err := NewEngine(Config{N: 4, Sink: 2, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 4 || e.Sink() != 2 || e.OwnerCount() != 4 {
		t.Errorf("view: n=%d sink=%d owners=%d", e.N(), e.Sink(), e.OwnerCount())
	}
	if !e.Owns(0) || e.Owns(-1) || e.Owns(4) {
		t.Error("Owns wrong")
	}
}

func TestEngineAdaptiveAdversarySeesOwnership(t *testing.T) {
	// The adversary watches node 2's data: after 2 transmits, it starts
	// emitting {0,1} instead of {1,2}.
	sawLoss := false
	adv := advFunc(func(t int, v ExecView) (seq.Interaction, bool) {
		if !v.Owns(2) {
			sawLoss = true
			return seq.Interaction{U: 0, V: 1}, true
		}
		return seq.Interaction{U: 1, V: 2}, true
	})
	alg := scriptAlg{receivers: map[int]graph.NodeID{0: 1, 1: 0}}
	res, err := RunOnce(Config{N: 3, MaxInteractions: 10}, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if !sawLoss {
		t.Error("adversary never observed the transmission")
	}
	if !res.Terminated {
		t.Errorf("res = %+v", res)
	}
}

// recordingSink captures events.
type recordingSink struct {
	events []Event
	done   *Result
}

func (r *recordingSink) OnEvent(ev Event)  { r.events = append(r.events, ev) }
func (r *recordingSink) OnDone(res Result) { r.done = &res }

func TestEngineEvents(t *testing.T) {
	rec := &recordingSink{}
	cfg := Config{N: 3, MaxInteractions: 10, Events: rec}
	alg := scriptAlg{receivers: map[int]graph.NodeID{1: 1, 2: 0}}
	adv := seqAdv{steps: []seq.Interaction{
		{U: 1, V: 2}, // declined
		{U: 1, V: 2}, // 2 -> 1
		{U: 0, V: 1}, // 1 -> 0, terminate
	}}
	res, err := RunOnce(cfg, alg, adv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 3 {
		t.Fatalf("got %d events", len(rec.events))
	}
	if rec.events[0].Decision != NoTransfer || !rec.events[0].BothOwned {
		t.Errorf("event0 = %+v", rec.events[0])
	}
	if rec.events[1].Sender != 2 || rec.events[1].Receiver != 1 {
		t.Errorf("event1 = %+v", rec.events[1])
	}
	if rec.done == nil || rec.done.Terminated != res.Terminated {
		t.Error("OnDone not delivered")
	}
}

// observerAlg verifies Observe is called on every interaction, including
// those where an endpoint lacks data.
type observerAlg struct {
	scriptAlg

	observed []int
}

func (o *observerAlg) Observe(_ *Env, _ seq.Interaction, t int) {
	o.observed = append(o.observed, t)
}

func TestEngineObserverSeesAllInteractions(t *testing.T) {
	alg := &observerAlg{scriptAlg: scriptAlg{receivers: map[int]graph.NodeID{0: 1}}}
	adv := seqAdv{steps: []seq.Interaction{
		{U: 1, V: 2}, // 2 -> 1
		{U: 1, V: 2}, // 2 has no data: Decide skipped, Observe still called
		{U: 1, V: 2},
	}}
	if _, err := RunOnce(Config{N: 3, MaxInteractions: 10}, alg, adv); err != nil {
		t.Fatal(err)
	}
	if len(alg.observed) != 3 {
		t.Errorf("Observe called %d times, want 3", len(alg.observed))
	}
}

func TestRunOncePropagatesEngineError(t *testing.T) {
	if _, err := RunOnce(Config{N: 0}, scriptAlg{}, seqAdv{}); err == nil {
		t.Error("want error")
	}
}

func TestEngineDefaultKnowledgeIsEmptyBundle(t *testing.T) {
	e, err := NewEngine(Config{N: 3, MaxInteractions: 5})
	if err != nil {
		t.Fatal(err)
	}
	env := e.Env()
	if env.Know == nil {
		t.Fatal("knowledge bundle is nil")
	}
	if env.Know.HasMeetTime() || env.Know.HasFutures() {
		t.Error("default bundle should grant nothing")
	}
}
