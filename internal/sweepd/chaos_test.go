package sweepd

// Fault-injection tests for the journal's write path: a sweep whose
// filesystem fails underneath it (full disk, failed fsync, failed or
// torn renames) must keep every published checkpoint intact, and
// retrying on a healed disk must converge to output byte-identical to a
// run that never saw a fault.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"doda/internal/chaos"
	"doda/internal/sweep"
)

// chaosGrid is small (32 cells) because chaos runs retry the whole
// shard several times.
func chaosGrid() sweep.Grid {
	return sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "churn"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{4, 5, 6, 7, 8, 9, 10, 11},
		Replicas:   1,
		Seed:       4242,
	}
}

// runWithFS drives one checkpointed run through fsys and renders its
// stream like renderJSONL.
func runWithFS(grid sweep.Grid, dir string, fsys chaos.FS) (string, error) {
	results, totals, err := Run(grid, dir, Options{Workers: 1, Resume: true, FS: fsys})
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			return "", err
		}
	}
	if err := enc.Encode(totals); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// TestJournalSurvivesInjectedFaults: under a seeded schedule of short
// writes, failed fsyncs, failed renames, and torn renames, retrying the
// run until the budget drains must converge byte-identically to the
// fault-free reference — for several seeds, so the faults land on
// different operations.
func TestJournalSurvivesInjectedFaults(t *testing.T) {
	grid := chaosGrid()
	want := uninterrupted(t, grid)
	for _, seed := range []uint64{1, 7, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			fsys := chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{
				Seed:       seed,
				WriteFail:  0.15,
				SyncFail:   0.1,
				RenameFail: 0.1,
				TornRename: 0.05,
				MaxFaults:  8,
			})
			var got string
			var err error
			for attempt := 0; attempt < 20; attempt++ {
				got, err = runWithFS(grid, dir, fsys)
				if err == nil {
					break
				}
				t.Logf("attempt %d: %v", attempt, err)
				fsys.Revive()
			}
			if err != nil {
				t.Fatalf("never converged (faults=%d): %v", fsys.Faults(), err)
			}
			if got != want {
				t.Fatal("chaos-resumed run differs from fault-free reference")
			}
		})
	}
}

// TestTornRenameRepairedOnResume pins the power-cut case: the very
// first rename tears the published segment's tail and the machine
// "dies"; the reboot (a clean-disk resume) must repair the tail and
// finish byte-identically.
func TestTornRenameRepairedOnResume(t *testing.T) {
	grid := chaosGrid()
	want := uninterrupted(t, grid)
	dir := t.TempDir()
	fsys := chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{Seed: 3, TornRename: 1, MaxFaults: 1})
	if _, err := runWithFS(grid, dir, fsys); !errors.Is(err, chaos.ErrCrashed) {
		t.Fatalf("want the injected crash, got %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("FS should be latched crashed after the torn rename")
	}
	got, err := runWithFS(grid, dir, chaos.Disk)
	if err != nil {
		t.Fatalf("resume on a healthy disk failed: %v", err)
	}
	if got != want {
		t.Fatal("post-crash resume differs from fault-free reference")
	}
}

// TestReadProgressTolatesInjectedDamage: progress is advisory, so a
// torn or failed progress write must read back as (nil, nil), never an
// error.
func TestReadProgressTolatesInjectedDamage(t *testing.T) {
	// Torn rename: the file exists with a truncated tail.
	dir := t.TempDir()
	fsys := chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{Seed: 9, TornRename: 1, MaxFaults: 1})
	if err := writeProgress(fsys, dir, Progress{CellsDone: 3, CellsTotal: 9}); err == nil {
		t.Fatal("torn rename should surface as an error to the writer")
	}
	if p, err := ReadProgress(dir); err != nil || p != nil {
		t.Fatalf("torn progress: want (nil, nil), got (%+v, %v)", p, err)
	}

	// Failed write: no file is published at all.
	dir2 := t.TempDir()
	fsys2 := chaos.NewFaultFS(chaos.Disk, chaos.FSOptions{Seed: 9, WriteFail: 1, MaxFaults: 1})
	if err := writeProgress(fsys2, dir2, Progress{CellsDone: 1, CellsTotal: 2}); err == nil {
		t.Fatal("injected write failure should surface to the writer")
	}
	if p, err := ReadProgress(dir2); err != nil || p != nil {
		t.Fatalf("failed progress write: want (nil, nil), got (%+v, %v)", p, err)
	}

	// And after the budget drains, the same tracker publishes fine.
	if err := writeProgress(fsys2, dir2, Progress{CellsDone: 2, CellsTotal: 2, Done: true}); err != nil {
		t.Fatalf("post-budget write: %v", err)
	}
	p, err := ReadProgress(dir2)
	if err != nil || p == nil || !p.Done {
		t.Fatalf("healed progress: got (%+v, %v)", p, err)
	}
}
