package sweepd

// Codec-level tests for the checkpoint journal: record round-trips,
// truncated-tail recovery, stale-checkpoint rejection, and fuzzers over
// both the encode→decode path and arbitrary hostile input.

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"doda/internal/stats"
	"doda/internal/sweep"
)

// testGrid is a small valid grid for journal identity checks.
func testGrid(seed uint64) sweep.Grid {
	return sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "zipf", Params: map[string]string{"alpha": "1"}}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{8, 10},
		Replicas:   2,
		Seed:       seed,
	}
}

// fakeResult fabricates a plausible cell result for codec tests (no sweep
// needs to run to test the journal).
func fakeResult(t *testing.T, grid sweep.Grid, index int, durs ...float64) sweep.CellResult {
	t.Helper()
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if index >= len(cells) {
		t.Fatalf("index %d outside %d-cell test grid", index, len(cells))
	}
	r := sweep.CellResult{Cell: cells[index], Replicas: len(durs)}
	var w stats.Welford
	for _, d := range durs {
		w.Add(d)
		r.Terminated++
		r.Transmissions += cells[index].N - 1
	}
	r.SetDurationAcc(w)
	return r
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	grid := testGrid(7)
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []sweep.CellResult{
		fakeResult(t, grid, 0, 11, 13),
		fakeResult(t, grid, 3, 101.5),
		fakeResult(t, grid, 5),
	}
	// Two records in one segment, one in another: segments may batch.
	j.Append(want[0])
	j.Append(want[1])
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Append(want[2])
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	h, recs, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := grid.Fingerprint()
	if h.Fingerprint != fp || h.ShardCount != 1 || h.Version != recordVersion {
		t.Errorf("header = %+v", h)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		got := rec.Restore()
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("record %d: got %+v, want %+v", i, got, want[i])
		}
		gw, ww := got.DurationAcc(), want[i].DurationAcc()
		if gw.State() != ww.State() {
			t.Errorf("record %d accumulator: got %+v, want %+v", i, gw.State(), ww.State())
		}
	}

	// Open resumes with the same records and appends past them.
	j2, recs2, err := Open(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(want) {
		t.Fatalf("resume saw %d records, want %d", len(recs2), len(want))
	}
	extra := fakeResult(t, grid, 6, 77)
	j2.Append(extra)
	if err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, recs3, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != len(want)+1 || recs3[len(recs3)-1].Index != 6 {
		t.Fatalf("after resume-append: %d records", len(recs3))
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := segmentNames(dir, false)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

// TestTruncatedTailRecovery kills bytes off the final record — a torn
// write — and checks the valid prefix survives, the torn record is
// dropped (not fatal), and Open durably repairs the file.
func TestTruncatedTailRecovery(t *testing.T) {
	grid := testGrid(9)
	for _, cut := range []int{1, 5, 20} {
		dir := t.TempDir()
		j, err := Create(dir, grid, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// One multi-record segment, so the tail drop must keep the
		// records before the torn one.
		j.Append(fakeResult(t, grid, 0, 5))
		j.Append(fakeResult(t, grid, 1, 6))
		j.Append(fakeResult(t, grid, 2, 7))
		if err := j.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		seg := lastSegment(t, dir)
		raw, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		_, recs, err := ReadCheckpoint(dir)
		if err != nil {
			t.Fatalf("cut=%d: truncated tail should recover, got %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut=%d: got %d records, want 2 (torn third dropped)", cut, len(recs))
		}

		// Open repairs: the segment now ends at the last valid record,
		// and a subsequent plain read sees no corruption.
		if _, _, err := Open(dir, grid, 0, 1); err != nil {
			t.Fatalf("cut=%d: open-with-repair: %v", cut, err)
		}
		repaired, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasSuffix(repaired, []byte("\n")) {
			t.Errorf("cut=%d: repaired segment not newline-terminated", cut)
		}
		if lines := bytes.Count(repaired, []byte("\n")); lines != 3 { // header + 2 surviving records
			t.Errorf("cut=%d: repaired segment has %d lines, want 3", cut, lines)
		}
		if _, recs, err = ReadCheckpoint(dir); err != nil || len(recs) != 2 {
			t.Fatalf("cut=%d: post-repair read: %d records, %v", cut, len(recs), err)
		}
	}
}

// TestTruncatedWholeFinalSegment drops a final segment cut down to
// nothing readable, including its header.
func TestTruncatedWholeFinalSegment(t *testing.T) {
	grid := testGrid(10)
	dir := t.TempDir()
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 1, 4))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 2, 9))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	if err := os.WriteFile(seg, []byte("garbage-with-no-newline"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := ReadCheckpoint(dir)
	if err != nil || len(recs) != 1 {
		t.Fatalf("read: %d records, %v (want 1, recovered)", len(recs), err)
	}
	if _, _, err := Open(dir, grid, 0, 1); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := os.Stat(seg); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("unreadable final segment should be removed by repair, stat: %v", err)
	}
}

// TestCorruptMiddleIsFatal flips a byte in a non-final segment: that is
// real corruption, not a torn tail, and must not be silently dropped.
func TestCorruptMiddleIsFatal(t *testing.T) {
	grid := testGrid(11)
	dir := t.TempDir()
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 0, 2))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	first := lastSegment(t, dir)
	j.Append(fakeResult(t, grid, 1, 3))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-stream corruption: got %v, want ErrCorrupt", err)
	}
}

// TestStaleCheckpointRejected covers the grid-fingerprint and
// shard-layout mismatch paths: a checkpoint for one configuration must
// never feed results into another.
func TestStaleCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testGrid(7), 0, 1); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		name       string
		grid       sweep.Grid
		shardIndex int
		shardCount int
	}{
		{name: "different seed", grid: testGrid(8), shardCount: 1},
		{name: "different sizes", grid: func() sweep.Grid { g := testGrid(7); g.Sizes = []int{8}; return g }(), shardCount: 1},
		{name: "different replicas", grid: func() sweep.Grid { g := testGrid(7); g.Replicas = 3; return g }(), shardCount: 1},
		{name: "different shard layout", grid: testGrid(7), shardIndex: 1, shardCount: 3},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Open(dir, tt.grid, tt.shardIndex, tt.shardCount); !errors.Is(err, ErrStaleCheckpoint) {
				t.Errorf("got %v, want ErrStaleCheckpoint", err)
			}
		})
	}
	// The matching identity still opens.
	if _, _, err := Open(dir, testGrid(7), 0, 1); err != nil {
		t.Errorf("matching grid rejected: %v", err)
	}
}

func TestCreateRefusesExistingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, testGrid(7), 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, testGrid(7), 0, 1); !errors.Is(err, ErrCheckpointExists) {
		t.Errorf("got %v, want ErrCheckpointExists", err)
	}
}

func TestOpenEmptyDirStartsFresh(t *testing.T) {
	// A run SIGKILLed before its first checkpoint leaves an empty (or
	// missing) directory; resume must start from zero, not fail.
	for _, make := range []bool{true, false} {
		dir := filepath.Join(t.TempDir(), "ck")
		if make {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
		}
		j, recs, err := Open(dir, testGrid(7), 0, 1)
		if err != nil || len(recs) != 0 || j == nil {
			t.Fatalf("mkdir=%v: open empty: %d recs, %v", make, len(recs), err)
		}
	}
}

func TestLeftoverTmpFilesIgnoredAndCleaned(t *testing.T) {
	dir := t.TempDir()
	grid := testGrid(7)
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 0, 8))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-writeSegment leaves a tmp file.
	tmp := filepath.Join(dir, segName(99)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, recs, err := ReadCheckpoint(dir); err != nil || len(recs) != 1 {
		t.Fatalf("tmp file broke reading: %d recs, %v", len(recs), err)
	}
	if _, _, err := Open(dir, grid, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("open should clean leftover tmp files, stat: %v", err)
	}
}

// FuzzCheckpointRoundTrip fuzzes the record codec: any cell record must
// encode to a line that decodes back to the identical record, moments
// included bit-for-bit.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(0, 3, 2, 14, 10.0, 20.0, 15.5, 12.25)
	f.Add(7, 1, 0, 0, 0.0, 0.0, 0.0, 0.0)
	f.Add(1<<30, 1000000, 999999, 1<<40, 1e-300, 1e300, -1e12, 3.141592653589793)
	f.Fuzz(func(t *testing.T, index, replicas, terminated, transmissions int, mn, mx, mean, m2 float64) {
		rec := CellRecord{
			Index: index,
			Result: sweep.CellResult{
				Cell: sweep.Cell{
					Index:      index,
					Scenario:   sweep.ScenarioRef{Name: "uniform"},
					Algorithm:  "gathering",
					N:          8,
					Seed:       uint64(index) * 0x9e3779b97f4a7c15,
					Provenance: "full",
				},
				Replicas:      replicas,
				Terminated:    terminated,
				Transmissions: transmissions,
			},
			DurAcc: stats.WelfordState{N: terminated, Mean: mean, M2: m2, Min: mn, Max: mx},
		}
		// NaN cannot ride JSON; the journal never carries NaNs (Welford
		// moments are finite for any real sample).
		if mean != mean || m2 != m2 || mn != mn || mx != mx {
			t.Skip("NaN moments are unrepresentable by design")
		}
		body, err := json.Marshal(rec)
		if err != nil {
			t.Skip("unmarshalable fuzz value (e.g. ±Inf)")
		}
		line := encodeLine(body)
		got, err := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		var back CellRecord
		if err := json.Unmarshal(got, &back); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(back, rec) {
			t.Fatalf("round trip changed record:\n got %+v\nwant %+v", back, rec)
		}
		restored := back.Restore()
		w := restored.DurationAcc()
		if w.State() != rec.DurAcc {
			t.Fatalf("accumulator round trip: got %+v, want %+v", w.State(), rec.DurAcc)
		}
	})
}

// FuzzDecodeLineHostile throws arbitrary bytes at the frame decoder: it
// must reject or accept but never panic, and accepted frames must carry a
// valid crc.
func FuzzDecodeLineHostile(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("00000000 {}"))
	f.Add([]byte("zzzzzzzz {}"))
	f.Add(encodeLine([]byte(`{"index":1}`)))
	f.Fuzz(func(t *testing.T, line []byte) {
		body, err := decodeLine(line)
		if err == nil {
			// Accepted: the body must survive a fresh encode→decode.
			line2 := encodeLine(body)
			body2, err2 := decodeLine(bytes.TrimSuffix(line2, []byte("\n")))
			if err2 != nil || !bytes.Equal(body, body2) {
				t.Fatalf("accepted body does not round-trip: %q (%v)", line, err2)
			}
		}
	})
}

// TestConcurrentWriterDetected: a second live writer on the same
// checkpoint directory must fail loudly at the O_EXCL tmp file instead
// of silently corrupting segments (crashed writers' leftover tmps are
// cleaned by Create/Open, so an existing tmp means a live process).
func TestConcurrentWriterDetected(t *testing.T) {
	dir := t.TempDir()
	grid := testGrid(7)
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the other process mid-write of the segment j will publish
	// next.
	tmp := filepath.Join(dir, segName(1)+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("other writer"), 0o644); err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 0, 3))
	if err := j.Checkpoint(); err == nil || !strings.Contains(err.Error(), "another live process") {
		t.Fatalf("Checkpoint over a live tmp file: got %v, want loud concurrent-writer error", err)
	}
	if raw, err := os.ReadFile(tmp); err != nil || string(raw) != "other writer" {
		t.Errorf("the other writer's tmp file was clobbered: %q, %v", raw, err)
	}
}

// TestSemanticCorruptionInFinalSegmentIsFatal: a crc-valid record that
// fails semantically (here: a duplicate cell index — the signature of
// mixed checkpoints) was written intact, so even in the final segment it
// must be ErrCorrupt, never "repaired" away as a torn tail.
func TestSemanticCorruptionInFinalSegmentIsFatal(t *testing.T) {
	dir := t.TempDir()
	grid := testGrid(7)
	j, err := Create(dir, grid, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(fakeResult(t, grid, 2, 5))
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Craft a final segment whose record duplicates cell 2: valid crc,
	// valid JSON, semantically impossible from a single writer.
	hb, err := json.Marshal(j.header)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(newCellRecord(fakeResult(t, grid, 2, 6)))
	if err != nil {
		t.Fatal(err)
	}
	seg := append(encodeLine(hb), encodeLine(rb)...)
	if err := os.WriteFile(filepath.Join(dir, segName(2)), seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate cell in final segment: got %v, want ErrCorrupt", err)
	}
	if _, _, err := Open(dir, grid, 0, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open must not repair semantic corruption away: got %v", err)
	}
	// The crafted segment must still be on disk (evidence preserved).
	if _, err := os.Stat(filepath.Join(dir, segName(2))); err != nil {
		t.Errorf("evidence segment removed: %v", err)
	}
}
