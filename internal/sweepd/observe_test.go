package sweepd

// Observability-layer tests: per-replica checkpoint granularity with
// mid-cell crash-resume differentials, the read-only Watcher against
// live and damaged checkpoints (including a reader hammering an actively
// appending writer), and the advisory progress record's tolerance
// contract.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"doda/internal/chaos"
	"doda/internal/sweep"
)

// gridSmall is a quick 12-cell grid for watcher/progress units.
func gridSmall() sweep.Grid {
	return sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}, {Name: "churn"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{4, 6, 8},
		Replicas:   3,
		Seed:       555,
	}
}

// runPerReplicaUntilKilled drives one per-replica checkpointed run that
// aborts after killAt journaled replica records (0 = run to completion,
// checking the stream), returning the emitted stream.
func runPerReplicaUntilKilled(t *testing.T, grid sweep.Grid, dir string, workers, killAt int, resume bool) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var reps atomic.Int64
	opt := Options{
		Workers:       workers,
		Resume:        resume,
		PerReplica:    true,
		ProgressEvery: -1,
		OnResult:      func(r sweep.CellResult) error { return enc.Encode(r) },
	}
	if killAt > 0 {
		opt.AfterReplica = func(cell, repsDone int) error {
			if reps.Add(1) >= int64(killAt) {
				return errKilled
			}
			return nil
		}
	}
	results, totals, err := Run(grid, dir, opt)
	if killAt > 0 {
		if !errors.Is(err, errKilled) {
			t.Fatalf("killAt=%d replicas: got %v, want the injected kill", killAt, err)
		}
		return buf.String()
	}
	if err != nil {
		t.Fatal(err)
	}
	return renderJSONL(t, results, totals)
}

// TestPerReplicaCrashResumeDifferential is the mid-cell kill gate: a
// per-replica checkpointed sweep killed between replicas of a cell —
// never at a cell boundary — and resumed must replay the journaled
// replica prefix and produce a stream byte-identical to the
// uninterrupted run, across worker counts.
func TestPerReplicaCrashResumeDifferential(t *testing.T) {
	grid := gridSmall()
	want := uninterrupted(t, grid)
	rng := rand.New(rand.NewSource(99))
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				dir := filepath.Join(t.TempDir(), "ck")
				// First run: killed mid-cell after 1..12 replica records.
				runPerReplicaUntilKilled(t, grid, dir, workers, 1+rng.Intn(12), false)
				// Second run: resumed and killed mid-cell again.
				runPerReplicaUntilKilled(t, grid, dir, workers, 1+rng.Intn(6), true)
				// Final resume runs to completion.
				got := runPerReplicaUntilKilled(t, grid, dir, workers, 0, true)
				if got != want {
					t.Fatalf("trial %d: per-replica resumed stream differs from uninterrupted run", trial)
				}
			}
		})
	}
}

// TestPerReplicaMatchesCellGranularity pins that checkpoint granularity
// is invisible in the output: the same grid journaled per-replica and
// per-cell produces identical streams, and the per-replica journal can
// be merged/loaded by the same readers.
func TestPerReplicaMatchesCellGranularity(t *testing.T) {
	grid := gridSmall()
	base := t.TempDir()
	perCell, _ := runUntilKilled(t, grid, filepath.Join(base, "cell"), 2, 0, 1, 0, false)
	perRep := runPerReplicaUntilKilled(t, grid, filepath.Join(base, "rep"), 2, 0, false)
	if perCell != perRep {
		t.Fatal("per-replica and per-cell checkpointing produced different streams")
	}
	r1, t1, err := Merge([]string{filepath.Join(base, "cell")})
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := Merge([]string{filepath.Join(base, "rep")})
	if err != nil {
		t.Fatal(err)
	}
	if renderJSONL(t, r1, t1) != renderJSONL(t, r2, t2) {
		t.Fatal("merged per-replica checkpoint differs from per-cell")
	}
}

// TestReaderWhileWriter hammers a live checkpoint with concurrent
// read-only observers while a per-replica writer journals into it: no
// Snapshot or ReadProgress call may ever error (beyond ErrNoCheckpoint
// before the first segment lands), and the final snapshot must agree
// with the finished journal.
func TestReaderWhileWriter(t *testing.T) {
	grid := gridSmall()
	dir := filepath.Join(t.TempDir(), "ck")

	writerDone := make(chan error, 1)
	go func() {
		_, _, err := Run(grid, dir, Options{
			Workers:       2,
			PerReplica:    true,
			ProgressEvery: 1, // flush the advisory record constantly
		})
		writerDone <- err
	}()

	// One persistent watcher (exercises the (size, mtime) cache across
	// segment publications) and fresh ones every poll (exercises cold
	// parses of half-published state).
	persistent := NewWatcher(dir)
	polls, sawProgress := 0, false
	var lastDone int
	for done := false; !done; {
		select {
		case err := <-writerDone:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
		}
		for _, w := range []*Watcher{persistent, NewWatcher(dir)} {
			snap, err := w.Snapshot()
			if errors.Is(err, ErrNoCheckpoint) {
				continue
			}
			if err != nil {
				t.Fatalf("live Snapshot errored: %v", err)
			}
			if snap.CellsDone < lastDone && w == persistent {
				t.Fatalf("progress regressed: %d then %d cells done", lastDone, snap.CellsDone)
			}
			if w == persistent {
				lastDone = snap.CellsDone
			}
			if snap.Progress != nil {
				sawProgress = true
			}
		}
		if _, err := ReadProgress(dir); err != nil {
			t.Fatalf("live ReadProgress errored: %v", err)
		}
		polls++
	}

	final, err := persistent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if final.CellsDone != len(cells) || final.CellsTotal != len(cells) {
		t.Fatalf("final snapshot %d/%d cells, want %d/%d", final.CellsDone, final.CellsTotal, len(cells), len(cells))
	}
	if final.ReplicasDone != 0 {
		t.Fatalf("finished shard still reports %d in-flight replicas", final.ReplicasDone)
	}
	if final.Progress == nil || !final.Progress.Done {
		t.Fatalf("final progress record missing or not done: %+v", final.Progress)
	}
	if !sawProgress && polls > 0 {
		t.Log("note: no poll observed a progress record (timing-dependent, not a failure)")
	}
	if final.WallMsSum < 0 {
		t.Fatal("negative wall-time sum")
	}
}

// TestWatcherToleratesTornTail truncates the last published segment
// mid-line: the Watcher must count the valid prefix and never error —
// that is exactly the shape a crashed writer leaves.
func TestWatcherToleratesTornTail(t *testing.T) {
	grid := gridSmall()
	dir := filepath.Join(t.TempDir(), "ck")
	runUntilKilled(t, grid, dir, 1, 0, 1, 0, false)

	whole, err := NewWatcher(dir).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, names[len(names)-1])
	raw, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	torn, err := NewWatcher(dir).Snapshot()
	if err != nil {
		t.Fatalf("torn tail must be tolerated, got %v", err)
	}
	if torn.CellsDone >= whole.CellsDone {
		t.Fatalf("truncation removed a record but CellsDone went %d -> %d", whole.CellsDone, torn.CellsDone)
	}
}

// TestWatcherRejectsSemanticCorruption pins the other half of the
// tolerance contract: crc-intact lines that violate journal invariants
// (here, a duplicated segment producing duplicate cells) still fail.
func TestWatcherRejectsSemanticCorruption(t *testing.T) {
	grid := gridSmall()
	dir := filepath.Join(t.TempDir(), "ck")
	runUntilKilled(t, grid, dir, 1, 0, 1, 0, false)
	names, err := segmentNames(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, names[len(names)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(len(names))), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWatcher(dir).Snapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicated segment: got %v, want ErrCorrupt", err)
	}
}

// TestWatcherEmptyDir returns ErrNoCheckpoint, and a directory holding
// only tmp files reads the same way.
func TestWatcherEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewWatcher(dir).Snapshot(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: got %v, want ErrNoCheckpoint", err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(0)+tmpSuffix), []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWatcher(dir).Snapshot(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("tmp-only dir: got %v, want ErrNoCheckpoint", err)
	}
}

// TestProgressRecordLifecycle checks writeProgress/ReadProgress round
// trips and every documented tolerance: absent, torn, crc-damaged and
// non-JSON files all read as (nil, nil).
func TestProgressRecordLifecycle(t *testing.T) {
	dir := t.TempDir()
	if p, err := ReadProgress(dir); p != nil || err != nil {
		t.Fatalf("missing record: got %+v, %v", p, err)
	}
	want := Progress{CellsDone: 3, CellsTotal: 12, FreshCells: 2, Interactions: 44.5, Transmissions: 17, ElapsedMs: 1250}
	if err := writeProgress(chaos.Disk, dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProgress(dir)
	if err != nil || got == nil || *got != want {
		t.Fatalf("round trip: got %+v, %v", got, err)
	}
	path := filepath.Join(dir, progressName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for name, contents := range map[string][]byte{
		"torn":        raw[:len(raw)-4],
		"crc-damaged": append([]byte("deadbeef"), raw[8:]...),
		"not-json":    encodeLine([]byte("not json")),
		"empty":       {},
	} {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		if p, err := ReadProgress(dir); p != nil || err != nil {
			t.Fatalf("%s record: got %+v, %v (want nil, nil)", name, p, err)
		}
	}
	// A fresh write replaces the damage.
	if err := writeProgress(chaos.Disk, dir, want); err != nil {
		t.Fatal(err)
	}
	if p, _ := ReadProgress(dir); p == nil || !strings.Contains(fmt.Sprint(*p), "44.5") {
		t.Fatalf("rewrite after damage: got %+v", p)
	}
}

// TestProgressCountsRestoredWork resumes a killed per-cell run and
// checks the first flushed record already counts the restored cells.
func TestProgressCountsRestoredWork(t *testing.T) {
	grid := gridSmall()
	dir := filepath.Join(t.TempDir(), "ck")
	runUntilKilled(t, grid, dir, 1, 0, 1, 4, false) // dies after 4 cells
	var first, last *Progress
	_, _, err := Run(grid, dir, Options{
		Workers: 1,
		Resume:  true,
		OnProgress: func(p Progress) {
			if first == nil {
				cp := p
				first = &cp
			}
			cp := p
			last = &cp
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("OnProgress never fired")
	}
	if first.CellsDone < 4 || first.CellsDone-first.FreshCells != 4 {
		t.Fatalf("first flush reports %+v, want the 4 restored cells counted as done but not fresh", first)
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if last.CellsDone != len(cells) || !last.Done {
		t.Fatalf("final flush reports %+v, want all %d cells done", last, len(cells))
	}
	if last.FreshCells != len(cells)-4 {
		t.Fatalf("FreshCells=%d, want %d (4 cells were restored)", last.FreshCells, len(cells)-4)
	}
}
