package sweepd

// Crash-resume differential tests: a sweep killed at arbitrary cell
// boundaries (injected through the AfterCheckpoint hook) and resumed must
// produce a JSONL stream and Totals byte-identical to an uninterrupted
// run — across worker counts and shard layouts — and a sharded fleet
// merged with Merge must match the unsharded single process exactly.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"doda/internal/sweep"
)

// grid200 is the 200-cell differential grid: 5 scenarios × 2 algorithms
// × 20 sizes, small enough to terminate fast, big enough that kill
// points and shard hashes land everywhere.
func grid200() sweep.Grid {
	sizes := make([]int, 20)
	for i := range sizes {
		sizes[i] = 4 + i
	}
	return sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "edge-markovian"},
			{Name: "community", Params: map[string]string{"communities": "2"}},
			{Name: "churn"},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      sizes,
		Replicas:   2,
		Seed:       1729,
	}
}

// renderJSONL encodes results plus totals exactly as cmd/dodasweep
// streams them with -summary.
func renderJSONL(t *testing.T, results []sweep.CellResult, totals sweep.Totals) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// uninterrupted runs the reference sweep once (plain sweep.Run, no
// checkpointing anywhere near it) and returns its rendered stream.
func uninterrupted(t *testing.T, grid sweep.Grid) string {
	t.Helper()
	results, totals, err := sweep.Run(grid, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return renderJSONL(t, results, totals)
}

// errKilled is the injected crash.
var errKilled = errors.New("injected kill at cell boundary")

// runUntilKilled drives one checkpointed shard run that aborts after
// killAt newly journaled cells (0 = run to completion), returning the
// stream it managed to emit and whether it was killed.
func runUntilKilled(t *testing.T, grid sweep.Grid, dir string, workers, shardIndex, shardCount, killAt int, resume bool) (string, bool) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	journaled := 0
	opt := Options{
		Workers:    workers,
		ShardIndex: shardIndex,
		ShardCount: shardCount,
		Resume:     resume,
		OnResult:   func(r sweep.CellResult) error { return enc.Encode(r) },
	}
	if killAt > 0 {
		opt.AfterCheckpoint = func(done, total int) error {
			journaled++
			if journaled >= killAt {
				return errKilled
			}
			return nil
		}
	}
	results, totals, err := Run(grid, dir, opt)
	if killAt > 0 {
		if !errors.Is(err, errKilled) {
			t.Fatalf("killAt=%d: got %v, want the injected kill", killAt, err)
		}
		return buf.String(), true
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	// The returned results must agree with the stream (same encoder).
	if got := renderJSONL(t, results, totals); got != buf.String() {
		t.Fatal("returned results disagree with the OnResult stream")
	}
	return buf.String(), false
}

// TestCrashResumeDifferential is the acceptance gate: kill a 200-cell
// sweep at random cell boundaries, resume it (possibly crashing again),
// and require the final stream byte-identical to the uninterrupted run —
// for workers=1 and workers=8.
func TestCrashResumeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-run differential sweep skipped in -short mode")
	}
	grid := grid200()
	want := uninterrupted(t, grid)
	wantLines := strings.Count(want, "\n")
	if wantLines != 201 { // 200 cells + totals
		t.Fatalf("reference run has %d lines, want 201", wantLines)
	}
	rng := rand.New(rand.NewSource(42))
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				dir := filepath.Join(t.TempDir(), "ck")
				// First run: killed after 1..120 fresh cells.
				kill1 := 1 + rng.Intn(120)
				if _, killed := runUntilKilled(t, grid, dir, workers, 0, 1, kill1, false); !killed {
					t.Fatal("first run was not killed")
				}
				// Second run: resumed, killed again a bit further in.
				kill2 := 1 + rng.Intn(60)
				runUntilKilled(t, grid, dir, workers, 0, 1, kill2, true)
				// Final resume runs to completion.
				got, _ := runUntilKilled(t, grid, dir, workers, 0, 1, 0, true)
				if got != want {
					t.Fatalf("trial %d (kills at %d, +%d): resumed stream differs from uninterrupted run\n got %d bytes\nwant %d bytes",
						trial, kill1, kill2, len(got), len(want))
				}
			}
		})
	}
}

// TestShardedMergeDifferential partitions the 200-cell grid into m
// shards (with crash-resume on some shards), merges the checkpoints, and
// requires the merged stream byte-identical to the unsharded
// uninterrupted run — for m ∈ {1, 3, 7}.
func TestShardedMergeDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-run differential sweep skipped in -short mode")
	}
	grid := grid200()
	want := uninterrupted(t, grid)
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", m), func(t *testing.T) {
			base := t.TempDir()
			dirs := make([]string, m)
			for i := 0; i < m; i++ {
				dirs[i] = filepath.Join(base, fmt.Sprintf("shard%d", i))
				workers := 1 + rng.Intn(4)
				// Roughly half the shards crash once mid-run first.
				if rng.Intn(2) == 0 {
					runUntilKilled(t, grid, dirs[i], workers, i, m, 1+rng.Intn(20), false)
					runUntilKilled(t, grid, dirs[i], workers, i, m, 0, true)
				} else {
					runUntilKilled(t, grid, dirs[i], workers, i, m, 0, false)
				}
			}
			results, totals, err := Merge(dirs)
			if err != nil {
				t.Fatal(err)
			}
			if got := renderJSONL(t, results, totals); got != want {
				t.Fatalf("merged %d-shard stream differs from uninterrupted run", m)
			}
		})
	}
}

// TestShardsPartitionCells pins the disjoint-cover contract the fleet
// depends on: every cell lands in exactly one shard, for any m.
func TestShardsPartitionCells(t *testing.T) {
	for _, m := range []int{1, 2, 3, 7, 16, 101} {
		counts := make([]int, m)
		for idx := 0; idx < 5000; idx++ {
			s := sweep.ShardOf(idx, m)
			if s < 0 || s >= m {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", idx, m, s)
			}
			counts[s]++
		}
		if m > 1 {
			// The stable hash must spread load: no shard may hold more
			// than twice its fair share of a 5000-cell grid.
			fair := 5000 / m
			for s, c := range counts {
				if c > 2*fair+1 {
					t.Errorf("m=%d: shard %d holds %d of 5000 cells (fair share %d)", m, s, c, fair)
				}
			}
		}
	}
	// Stability: the assignment is a pure function of (index, m).
	for idx := 0; idx < 100; idx++ {
		if sweep.ShardOf(idx, 7) != sweep.ShardOf(idx, 7) {
			t.Fatal("ShardOf is not stable")
		}
	}
}

// TestMergeRejectsIncompleteAndMixedFleets covers merge's refusals.
func TestMergeRejectsIncompleteAndMixedFleets(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{4, 5, 6, 7, 8, 9, 10, 11, 12, 13}, // 10 cells: every 3-way shard non-empty
		Replicas:   1,
		Seed:       5,
	}
	base := t.TempDir()
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("s%d", i))
		runUntilKilled(t, grid, dirs[i], 1, i, 3, 0, false)
	}

	t.Run("missing shard", func(t *testing.T) {
		if _, _, err := Merge(dirs[:2]); err == nil {
			t.Error("merging 2 of 3 shards must fail")
		}
	})
	t.Run("duplicate shard", func(t *testing.T) {
		if _, _, err := Merge([]string{dirs[0], dirs[1], dirs[1]}); err == nil {
			t.Error("the same shard twice must fail")
		}
	})
	t.Run("unfinished shard", func(t *testing.T) {
		killedDir := filepath.Join(base, "killed")
		runUntilKilled(t, grid, killedDir, 1, 2, 3, 1, false) // dies after 1 cell
		if _, _, err := Merge([]string{dirs[0], dirs[1], killedDir}); err == nil ||
			!strings.Contains(err.Error(), "resume it before merging") {
			t.Errorf("unfinished shard: got %v", err)
		}
	})
	t.Run("foreign grid", func(t *testing.T) {
		other := grid
		other.Seed = 6
		foreignDir := filepath.Join(base, "foreign")
		runUntilKilled(t, other, foreignDir, 1, 2, 3, 0, false)
		if _, _, err := Merge([]string{dirs[0], dirs[1], foreignDir}); !errors.Is(err, ErrStaleCheckpoint) {
			t.Errorf("foreign grid: got %v, want ErrStaleCheckpoint", err)
		}
	})
}

// TestResumeAfterCompletionIsANoOp re-runs a finished checkpoint: zero
// cells execute (a hook error would fire on any fresh cell) and the
// stream is re-emitted identically.
func TestResumeAfterCompletionIsANoOp(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{6, 9},
		Replicas:   2,
		Seed:       31,
	}
	dir := filepath.Join(t.TempDir(), "ck")
	first, _ := runUntilKilled(t, grid, dir, 2, 0, 1, 0, false)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	results, totals, err := Run(grid, dir, Options{
		Resume:   true,
		OnResult: func(r sweep.CellResult) error { return enc.Encode(r) },
		AfterCheckpoint: func(done, total int) error {
			return fmt.Errorf("no cell should run fresh, but %d/%d did", done, total)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(totals); err != nil {
		t.Fatal(err)
	}
	if buf.String() != first {
		t.Error("no-op resume stream differs from the original run")
	}
	if len(results) != 4 {
		t.Errorf("got %d results, want 4", len(results))
	}
}

// TestRunOnResultErrorAborts propagates an emitter failure (the
// ENOSPC/short-write class) out of the service.
func TestRunOnResultErrorAborts(t *testing.T) {
	grid := sweep.Grid{
		Scenarios:  []sweep.ScenarioRef{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{6, 8, 10},
		Replicas:   1,
		Seed:       3,
	}
	sentinel := errors.New("disk full")
	emitted := 0
	_, _, err := Run(grid, filepath.Join(t.TempDir(), "ck"), Options{
		OnResult: func(sweep.CellResult) error {
			emitted++
			if emitted == 2 {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want the emitter error", err)
	}
}
