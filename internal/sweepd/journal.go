package sweepd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"doda/internal/chaos"
	"doda/internal/stats"
	"doda/internal/sweep"
)

// fsOf resolves the filesystem seam: nil means the real disk. The seam
// covers the journal's write path (segment publish, torn-tail repair,
// progress records) — the deterministic chaos.FaultFS injects disk
// faults through it; readers stay on plain os.
func fsOf(f chaos.FS) chaos.FS {
	if f == nil {
		return chaos.Disk
	}
	return f
}

// Sentinel errors callers branch on.
var (
	// ErrNoCheckpoint reports a directory holding no checkpoint segments.
	ErrNoCheckpoint = errors.New("sweepd: no checkpoint in directory")
	// ErrStaleCheckpoint reports a checkpoint written for a different
	// grid (fingerprint mismatch) or a different shard layout — resuming
	// from it would smuggle another sweep's results into this one.
	ErrStaleCheckpoint = errors.New("sweepd: stale checkpoint")
	// ErrCheckpointExists reports a non-resume run pointed at a directory
	// that already holds a checkpoint.
	ErrCheckpointExists = errors.New("sweepd: checkpoint already exists (resume to continue it)")
	// ErrCorrupt reports an unrecoverable checkpoint record: a crc or
	// parse failure anywhere but the torn tail of the final segment.
	ErrCorrupt = errors.New("sweepd: corrupt checkpoint")
)

// recordVersion is the checkpoint schema version; readers reject other
// versions rather than guessing at their layout.
const recordVersion = 1

const (
	segPrefix = "seg-"
	segSuffix = ".jsonl"
	tmpSuffix = ".tmp"
)

// castagnoli is the CRC-32C polynomial table guarding every record line.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the first record of every checkpoint segment: the identity a
// resume or merge validates before trusting a single cell record.
type Header struct {
	Version     int        `json:"version"`
	Fingerprint string     `json:"fingerprint"`
	ShardIndex  int        `json:"shard_index"`
	ShardCount  int        `json:"shard_count"`
	Grid        sweep.Grid `json:"grid"`
}

// CellRecord journals one completed cell: the result exactly as the
// streaming JSONL output encodes it, plus the cell's raw duration
// accumulator (which the rounded Duration metric cannot reconstruct) so
// resumed and merged totals fold bit-for-bit like an uninterrupted run.
// WallMs is the wall-clock cost of the cell's fresh replicas — pure
// observability metadata (progress dashboards, ETA estimates) that never
// feeds the deterministic result stream.
type CellRecord struct {
	Index  int                `json:"index"`
	Result sweep.CellResult   `json:"result"`
	DurAcc stats.WelfordState `json:"dur_acc"`
	WallMs float64            `json:"wall_ms,omitempty"`
}

// newCellRecord snapshots a completed cell for the journal.
func newCellRecord(r sweep.CellResult) CellRecord {
	w := r.DurationAcc()
	return CellRecord{Index: r.Index, Result: r, DurAcc: w.State()}
}

// ReplicaRecord journals one completed replica of a cell that has not
// finished yet — the replica-granularity checkpoint record behind
// Options.PerReplica, so huge-n cells survive mid-cell crashes. Out is
// exactly what sweep folds into the cell accumulators; replaying the
// journaled prefix and running the remaining replicas reproduces the
// cell byte-for-byte. Within one cell, records are journaled in replica
// order and must read back contiguous from replica 0.
type ReplicaRecord struct {
	CellIndex int                  `json:"cell"`
	Rep       int                  `json:"rep"`
	Out       sweep.ReplicaOutcome `json:"out"`
}

// Restore rebuilds the in-memory cell result, re-attaching the duration
// accumulator JSON could not carry inside Result.
func (c CellRecord) Restore() sweep.CellResult {
	r := c.Result
	r.SetDurationAcc(stats.WelfordFromState(c.DurAcc))
	return r
}

// EncodeRecord frames one journal record line — the crc-guarded framing
// every doda journal shares (checkpoint segments, progress records, and
// the fleet coordinator's event log reuse it).
func EncodeRecord(body []byte) []byte { return encodeLine(body) }

// DecodeRecord verifies a record line's frame and crc and returns the
// JSON body; failures wrap ErrCorrupt.
func DecodeRecord(line []byte) ([]byte, error) { return decodeLine(line) }

// SplitRecords splits raw journal bytes into newline-terminated record
// lines, reporting whether a torn (unterminated) tail was dropped.
func SplitRecords(raw []byte) ([][]byte, bool) { return splitLines(raw) }

// encodeLine frames one record: 8 lowercase hex digits of the CRC-32C of
// the JSON body, one space, the body, '\n'. The body is JSON, so it can
// never contain a raw newline — the line is the record boundary.
func encodeLine(body []byte) []byte {
	line := make([]byte, 0, len(body)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.Checksum(body, castagnoli))...)
	line = append(line, body...)
	return append(line, '\n')
}

// decodeLine verifies a record line's frame and crc and returns the JSON
// body. All failures wrap ErrCorrupt; the caller decides whether the
// position (torn tail of the final segment) makes them recoverable.
func decodeLine(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("%w: malformed record frame", ErrCorrupt)
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("%w: bad crc field: %v", ErrCorrupt, err)
	}
	body := line[9:]
	if got := crc32.Checksum(body, castagnoli); got != uint32(want) {
		return nil, fmt.Errorf("%w: crc mismatch (want %08x, got %08x)", ErrCorrupt, want, got)
	}
	return body, nil
}

// headerFor builds the checkpoint identity of a (grid, shard) pair.
func headerFor(grid sweep.Grid, shardIndex, shardCount int) (Header, error) {
	fp, err := grid.Fingerprint()
	if err != nil {
		return Header{}, err
	}
	return Header{
		Version:     recordVersion,
		Fingerprint: fp,
		ShardIndex:  shardIndex,
		ShardCount:  shardCount,
		Grid:        grid,
	}, nil
}

// matches reports whether two headers name the same checkpoint stream.
func (h Header) matches(o Header) bool {
	return h.Version == o.Version && h.Fingerprint == o.Fingerprint &&
		h.ShardIndex == o.ShardIndex && h.ShardCount == o.ShardCount
}

// Journal is an open checkpoint being written. Append buffers completed
// cells; Checkpoint flushes the buffer as one new immutable segment.
// Methods are not goroutine-safe: the sweep service calls them from the
// ordered emit path, which is already serialised.
//
// The service checkpoints once per cell, so a C-cell shard writes C
// small segments and pays a file+directory fsync per cell. That is the
// deliberate durability granularity: the grids this exists for spend
// far longer running a cell (replicas × up to millions of interactions)
// than publishing a segment, and immutable rename-published segments
// keep crash recovery trivial. Callers with very cheap cells can batch
// several Appends per Checkpoint to amortise the cost.
type Journal struct {
	fs      chaos.FS
	dir     string
	header  Header
	nextSeg int
	buf     []any // CellRecord | ReplicaRecord, in journal order
}

// segName renders the n-th segment's final file name; zero-padding keeps
// lexicographic order equal to numeric order.
func segName(n int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix)
}

// segNumber parses a segment file name, reporting whether it is one.
func segNumber(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// writeSegment atomically publishes one segment: write a tmp file, sync
// it, rename it to its final name, then sync the directory so the rename
// survives a power cut. A crash mid-write leaves only a tmp file, which
// readers ignore and the next writer cleans up. The tmp file is created
// with O_EXCL: a checkpoint has exactly one live writer (crashed writers'
// leftovers are cleaned by Create/Open first), so an existing tmp means a
// concurrent process is journaling into the same directory — fail loudly
// rather than let two writers corrupt each other's segments.
func writeSegment(fsys chaos.FS, dir, name string, lines [][]byte) error {
	tmp := filepath.Join(dir, name+tmpSuffix)
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("sweepd: %s already exists — another live process is writing this checkpoint (it has exactly one writer; shard to separate directories instead)", tmp)
		}
		return err
	}
	for _, line := range lines {
		if _, err := f.Write(line); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// Directory fsync makes the rename durable; filesystems that refuse
	// it outright are tolerated inside chaos.Disk, but a real I/O failure
	// must surface — swallowing it would let Checkpoint report durability
	// it does not have.
	return fsys.SyncDir(dir)
}

// Create starts a fresh checkpoint in dir for one shard of the grid. The
// directory is created if needed; it must not already hold a checkpoint
// (ErrCheckpointExists — resume instead). Leftover tmp files from a
// crashed writer are removed. Segment 0, carrying only the header, is
// written immediately so even a run killed before its first cell leaves a
// resumable, identity-checked checkpoint behind.
func Create(dir string, grid sweep.Grid, shardIndex, shardCount int) (*Journal, error) {
	return createFS(chaos.Disk, dir, grid, shardIndex, shardCount)
}

// createFS is Create through an explicit filesystem seam.
func createFS(fsys chaos.FS, dir string, grid sweep.Grid, shardIndex, shardCount int) (*Journal, error) {
	h, err := headerFor(grid, shardIndex, shardCount)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := segmentNames(dir, true)
	if err != nil {
		return nil, err
	}
	if len(names) > 0 {
		return nil, fmt.Errorf("%w: %s has %d segment(s)", ErrCheckpointExists, dir, len(names))
	}
	j := &Journal{fs: fsys, dir: dir, header: h, nextSeg: 0}
	if err := j.writeRecords(nil); err != nil {
		return nil, err
	}
	return j, nil
}

// Open resumes an existing checkpoint in dir, validating its identity
// against the (grid, shard) pair the caller is about to run: a
// fingerprint or shard-layout mismatch is ErrStaleCheckpoint. A directory
// with no checkpoint at all is treated as fresh (a run killed before its
// first checkpoint resumes from zero). If the final segment has a torn
// tail, the valid prefix is kept and the segment is atomically rewritten
// without the tail, so the repair is durable and the next reader never
// sees mid-stream corruption.
func Open(dir string, grid sweep.Grid, shardIndex, shardCount int) (*Journal, []CellRecord, error) {
	j, recs, _, err := OpenResume(dir, grid, shardIndex, shardCount)
	return j, recs, err
}

// OpenResume is Open plus the journaled replica prefixes of cells that
// have not completed: cell index → outcomes in replica order, ready to
// hand to sweep.Options.ResumeReplicas.
func OpenResume(dir string, grid sweep.Grid, shardIndex, shardCount int) (*Journal, []CellRecord, map[int][]sweep.ReplicaOutcome, error) {
	return openResumeFS(chaos.Disk, dir, grid, shardIndex, shardCount)
}

// openResumeFS is OpenResume through an explicit filesystem seam.
func openResumeFS(fsys chaos.FS, dir string, grid sweep.Grid, shardIndex, shardCount int) (*Journal, []CellRecord, map[int][]sweep.ReplicaOutcome, error) {
	h, err := headerFor(grid, shardIndex, shardCount)
	if err != nil {
		return nil, nil, nil, err
	}
	cp, err := readCheckpoint(dir)
	if errors.Is(err, ErrNoCheckpoint) {
		if errors.Is(err, errGenesisTorn) {
			names, nerr := segmentNames(dir, true)
			if nerr != nil {
				return nil, nil, nil, nerr
			}
			for _, name := range names {
				if rerr := fsys.Remove(filepath.Join(dir, name)); rerr != nil {
					return nil, nil, nil, rerr
				}
			}
			if serr := fsys.SyncDir(dir); serr != nil {
				return nil, nil, nil, serr
			}
		}
		j, err := createFS(fsys, dir, grid, shardIndex, shardCount)
		return j, nil, nil, err
	}
	if err != nil {
		return nil, nil, nil, err
	}
	// Sweep away tmp files a crashed writer left behind; only final
	// (renamed) segments count.
	if _, err := segmentNames(dir, true); err != nil {
		return nil, nil, nil, err
	}
	if !cp.header.matches(h) {
		return nil, nil, nil, fmt.Errorf("%w: checkpoint is for fingerprint %.12s shard %d/%d, want %.12s shard %d/%d",
			ErrStaleCheckpoint, cp.header.Fingerprint, cp.header.ShardIndex, cp.header.ShardCount,
			h.Fingerprint, shardIndex, shardCount)
	}
	if err := cp.repair(fsys, dir); err != nil {
		return nil, nil, nil, err
	}
	j := &Journal{fs: fsys, dir: dir, header: cp.header, nextSeg: cp.nextSeg}
	var prior map[int][]sweep.ReplicaOutcome
	if len(cp.replicas) > 0 {
		prior = make(map[int][]sweep.ReplicaOutcome, len(cp.replicas))
		for idx, recs := range cp.replicas {
			outs := make([]sweep.ReplicaOutcome, len(recs))
			for i, r := range recs {
				outs[i] = r.Out
			}
			prior[idx] = outs
		}
	}
	return j, cp.records, prior, nil
}

// Append buffers one completed cell for the next Checkpoint.
func (j *Journal) Append(r sweep.CellResult) {
	j.buf = append(j.buf, newCellRecord(r))
}

// AppendTimed is Append plus the cell's wall-clock cost in milliseconds,
// journaled for dashboards (it never feeds the result stream).
func (j *Journal) AppendTimed(r sweep.CellResult, wallMs float64) {
	rec := newCellRecord(r)
	rec.WallMs = wallMs
	j.buf = append(j.buf, rec)
}

// AppendReplica buffers one completed replica of a still-running cell.
// Replicas of a cell must be appended in replica order, and a later
// Append of the finished cell supersedes them on read-back.
func (j *Journal) AppendReplica(cellIndex, rep int, out sweep.ReplicaOutcome) {
	j.buf = append(j.buf, ReplicaRecord{CellIndex: cellIndex, Rep: rep, Out: out})
}

// Checkpoint flushes the buffered records as one new segment. A no-op
// when nothing is buffered. After it returns, the flushed cells are
// durable: a crash at any later instant resumes past them.
func (j *Journal) Checkpoint() error {
	if len(j.buf) == 0 {
		return nil
	}
	recs := j.buf
	if err := j.writeRecords(recs); err != nil {
		return err
	}
	j.buf = j.buf[:0]
	return nil
}

// writeRecords publishes one segment holding the header plus recs.
func (j *Journal) writeRecords(recs []any) error {
	lines := make([][]byte, 0, len(recs)+1)
	hb, err := json.Marshal(j.header)
	if err != nil {
		return err
	}
	lines = append(lines, encodeLine(hb))
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		lines = append(lines, encodeLine(b))
	}
	if err := writeSegment(fsOf(j.fs), j.dir, segName(j.nextSeg), lines); err != nil {
		return err
	}
	j.nextSeg++
	return nil
}

// Dir returns the checkpoint directory.
func (j *Journal) Dir() string { return j.dir }

// checkpoint is the parsed state of a checkpoint directory.
type checkpoint struct {
	header  Header
	records []CellRecord
	// replicas holds the journaled replica prefix of each cell that has
	// no cell record yet, in replica order. A cell record supersedes (and
	// drops) its cell's replica records on read-back.
	replicas map[int][]ReplicaRecord
	nextSeg  int
	// torn tail of the final segment, if any: the segment's name and the
	// valid raw lines to rewrite it with (possibly none — then the file
	// is removed outright).
	tornSeg   string
	tornLines [][]byte
}

// repair rewrites (or removes) a torn final segment so the checkpoint
// reads clean from now on. No-op for clean checkpoints.
func (cp *checkpoint) repair(fsys chaos.FS, dir string) error {
	if cp.tornSeg == "" {
		return nil
	}
	if len(cp.tornLines) == 0 {
		if err := fsys.Remove(filepath.Join(dir, cp.tornSeg)); err != nil {
			return err
		}
		return fsys.SyncDir(dir)
	}
	return writeSegment(fsys, dir, cp.tornSeg, cp.tornLines)
}

// segmentNames lists the final (non-tmp) segment file names in dir in
// segment order; cleanTmp additionally deletes leftover tmp files from a
// crashed writer. A missing directory reads as empty.
func segmentNames(dir string, cleanTmp bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if cleanTmp && strings.HasSuffix(name, tmpSuffix) {
			if _, ok := segNumber(strings.TrimSuffix(name, tmpSuffix)); ok ||
				strings.HasPrefix(name, progressPrefix) {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if _, ok := segNumber(name); ok {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, k int) bool {
		a, _ := segNumber(names[i])
		b, _ := segNumber(names[k])
		return a < b
	})
	return names, nil
}

// readCheckpoint parses every segment of dir. Corruption policy: a crc or
// parse failure on the last line(s) of the final segment is a torn tail —
// the valid prefix is kept and the truncation recorded for repair;
// corruption anywhere else is ErrCorrupt. Every segment's header must
// match segment 0's.
func readCheckpoint(dir string) (*checkpoint, error) {
	names, err := segmentNames(dir, false)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
	}
	cp := &checkpoint{replicas: make(map[int][]ReplicaRecord)}
	seen := make(map[int]string)
	for si, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		last := si == len(names)-1
		lines, torn := splitLines(raw)
		if torn && !last {
			return nil, fmt.Errorf("%w: segment %s has a torn tail but is not the final segment", ErrCorrupt, name)
		}
		var valid [][]byte
		for li, line := range lines {
			body, err := decodeLine(line)
			if err != nil {
				// A frame/crc failure is how a torn write looks:
				// recoverable, but only as the tail of the final segment.
				// Anything after it is part of the same torn write and is
				// dropped too.
				if !last {
					return nil, fmt.Errorf("segment %s record %d: %w", name, li, err)
				}
				torn = true
				break
			}
			// A line whose crc verifies was written intact — a semantic
			// failure on it (header mismatch, duplicate cell, version
			// skew) is never truncation, so it is fatal even in the final
			// segment: repairing it away would silently destroy journaled
			// records and the evidence of how they got mixed.
			var perr error
			if li == 0 {
				perr = cp.readHeader(si, name, body)
			} else {
				perr = cp.readRecord(name, li, body, seen)
			}
			if perr != nil {
				return nil, fmt.Errorf("segment %s record %d: %w", name, li, perr)
			}
			// Keep raw line copies only where they can be needed: as the
			// rewrite content when this (final) segment turns out torn.
			if last {
				keep := make([]byte, 0, len(line)+1)
				keep = append(append(keep, line...), '\n')
				valid = append(valid, keep)
			}
		}
		if torn {
			cp.tornSeg = name
			cp.tornLines = valid
		}
		n, _ := segNumber(name)
		if n >= cp.nextSeg {
			cp.nextSeg = n + 1
		}
	}
	if cp.header.Version == 0 {
		if len(names) == 1 && cp.tornSeg != "" && len(cp.tornLines) == 0 {
			// The only segment tore before its header record survived: the
			// crash hit the very first publish, so nothing was ever durable.
			// That is an empty checkpoint, not corruption — the opener
			// sweeps the torn file and starts fresh.
			return nil, fmt.Errorf("%w: %s: %w", ErrNoCheckpoint, dir, errGenesisTorn)
		}
		return nil, fmt.Errorf("%w: no readable header", ErrCorrupt)
	}
	return cp, nil
}

// errGenesisTorn marks the no-checkpoint subcase where a torn first
// publish left a damaged segment file behind that must be swept before
// creating fresh.
var errGenesisTorn = errors.New("only segment torn before its header")

// readHeader parses and validates one segment's header record.
func (cp *checkpoint) readHeader(si int, name string, body []byte) error {
	var h Header
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Errorf("%w: segment %s header: %v", ErrCorrupt, name, err)
	}
	if h.Version != recordVersion {
		return fmt.Errorf("%w: segment %s has version %d, this reader speaks %d",
			ErrStaleCheckpoint, name, h.Version, recordVersion)
	}
	if si == 0 {
		cp.header = h
		return nil
	}
	if !cp.header.matches(h) {
		return fmt.Errorf("%w: segment %s header disagrees with segment 0", ErrStaleCheckpoint, name)
	}
	return nil
}

// readRecord parses one non-header record line, dispatching on the JSON
// shape: cell records carry "result", replica records carry "out". Both
// kinds share recordVersion 1 — the discriminator is additive, so
// pre-replica checkpoints read unchanged.
func (cp *checkpoint) readRecord(name string, li int, body []byte, seen map[int]string) error {
	var probe struct {
		Result *json.RawMessage `json:"result"`
		Out    *json.RawMessage `json:"out"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
	}
	if probe.Result != nil {
		return cp.readCell(name, li, body, seen)
	}
	if probe.Out != nil {
		return cp.readReplica(name, li, body, seen)
	}
	return fmt.Errorf("%w: segment %s record %d: neither a cell nor a replica record", ErrCorrupt, name, li)
}

// readCell parses one cell record, rejecting duplicate cell indexes (no
// legitimate writer produces them; a duplicate means mixed checkpoints).
func (cp *checkpoint) readCell(name string, li int, body []byte, seen map[int]string) error {
	var rec CellRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
	}
	if rec.Index != rec.Result.Index {
		return fmt.Errorf("%w: segment %s record %d: index %d disagrees with result index %d",
			ErrCorrupt, name, li, rec.Index, rec.Result.Index)
	}
	if prev, dup := seen[rec.Index]; dup {
		return fmt.Errorf("%w: cell %d journaled in both %s and %s", ErrCorrupt, rec.Index, prev, name)
	}
	seen[rec.Index] = name
	cp.records = append(cp.records, rec)
	// The cell record folds its whole replica sequence; the journaled
	// prefix is now redundant.
	delete(cp.replicas, rec.Index)
	return nil
}

// readReplica parses one replica record. Replicas of a cell must read
// back contiguous from 0 and must precede the cell's own record — any
// other shape means mixed or reordered checkpoints, which is fatal.
func (cp *checkpoint) readReplica(name string, li int, body []byte, seen map[int]string) error {
	var rec ReplicaRecord
	if err := json.Unmarshal(body, &rec); err != nil {
		return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
	}
	if prev, done := seen[rec.CellIndex]; done {
		return fmt.Errorf("%w: replica record for cell %d in %s after its cell record in %s",
			ErrCorrupt, rec.CellIndex, name, prev)
	}
	if got := len(cp.replicas[rec.CellIndex]); rec.Rep != got {
		return fmt.Errorf("%w: cell %d replica %d journaled in %s but %d replica(s) precede it",
			ErrCorrupt, rec.CellIndex, rec.Rep, name, got)
	}
	cp.replicas[rec.CellIndex] = append(cp.replicas[rec.CellIndex], rec)
	return nil
}

// splitLines splits raw segment bytes into newline-terminated records,
// reporting whether a torn (unterminated) tail was dropped.
func splitLines(raw []byte) (lines [][]byte, torn bool) {
	for len(raw) > 0 {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			return lines, true // no terminator: torn tail
		}
		lines = append(lines, raw[:nl])
		raw = raw[nl+1:]
	}
	return lines, false
}

// ReadCheckpoint reads a checkpoint directory without opening it for
// writing: the header and every journaled cell, tolerating (but not
// repairing) a torn tail on the final segment. Merge and inspection
// tooling build on it.
func ReadCheckpoint(dir string) (Header, []CellRecord, error) {
	cp, err := readCheckpoint(dir)
	if err != nil {
		return Header{}, nil, err
	}
	return cp.header, cp.records, nil
}
