package sweepd

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"

	"doda/internal/chaos"
)

// progressName is the advisory progress record's file name inside a
// checkpoint directory; progressPrefix matches its tmp files so crashed
// writers' leftovers are swept with the segment tmps.
const (
	progressName   = "progress.json"
	progressPrefix = "progress"
)

// Progress is the periodically-flushed observability record of one
// running shard. It is purely advisory: the file is rewritten atomically
// but never fsynced, readers tolerate its absence or corruption, and
// nothing in resume or merge consults it — the journal segments alone
// carry the durable state. Counters cover the whole shard (restored +
// fresh), so a resumed run reports from where the crash left off.
type Progress struct {
	// CellsDone / CellsTotal count this shard's completed and assigned
	// cells; FreshCells is how many of CellsDone this process ran itself.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	FreshCells int `json:"fresh_cells"`
	// ReplicasDone counts journal-visible replicas of cells still in
	// flight (only meaningful under per-replica checkpointing).
	ReplicasDone int `json:"replicas_done,omitempty"`
	// Interactions and Transmissions total everything simulated so far,
	// including in-flight cells' completed replicas.
	Interactions  float64 `json:"interactions"`
	Transmissions int     `json:"transmissions"`
	// ElapsedMs is this process's wall time since its run started —
	// paired with FreshCells it yields a live cells/sec estimate.
	ElapsedMs float64 `json:"elapsed_ms"`
	// Done marks the shard complete; the final flush sets it.
	Done bool `json:"done,omitempty"`
}

// writeProgress atomically replaces dir's progress record: crc-framed
// like a segment line, written to a unique tmp and renamed. No fsync —
// losing the file costs a dashboard update, not data. Errors are
// returned for the caller to ignore or count; a full disk must not be
// able to kill a sweep via its progress ticker.
func writeProgress(fsys chaos.FS, dir string, p Progress) error {
	body, err := json.Marshal(p)
	if err != nil {
		return err
	}
	f, err := fsys.CreateTemp(dir, progressPrefix+"-*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(encodeLine(body)); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, progressName)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return nil
}

// ReadProgress reads dir's advisory progress record. A missing, torn or
// otherwise unreadable file reads as (nil, nil): progress is best-effort
// and a reader must never fail a dashboard over it.
func ReadProgress(dir string) (*Progress, error) {
	raw, err := os.ReadFile(filepath.Join(dir, progressName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	lines, torn := splitLines(raw)
	if torn || len(lines) != 1 {
		return nil, nil
	}
	body, err := decodeLine(lines[0])
	if err != nil {
		return nil, nil
	}
	var p Progress
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, nil
	}
	return &p, nil
}
