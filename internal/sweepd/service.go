package sweepd

import (
	"fmt"
	"math"
	"sync"
	"time"

	"doda/internal/chaos"
	"doda/internal/sweep"
)

// Options tunes one checkpointed sweep execution.
type Options struct {
	// Workers is the in-process worker count (< 1 = GOMAXPROCS), passed
	// through to sweep.Run.
	Workers int
	// ForceScalar disables the engine's batched fast path (differential
	// tests only), passed through to sweep.Run.
	ForceScalar bool
	// ShardIndex/ShardCount select which slice of the cell index space
	// this process covers: the cells with sweep.ShardOf(index,
	// ShardCount) == ShardIndex. ShardCount < 2 means the whole grid.
	// m processes running shards 0..m-1 (any mix of hosts) cover the
	// grid exactly once; Merge stitches their checkpoints back together.
	ShardIndex int
	ShardCount int
	// Resume loads an existing checkpoint from the directory and skips
	// its journaled cells; the directory may also be empty (a run killed
	// before its first checkpoint). Without Resume the directory must
	// not already hold a checkpoint.
	Resume bool
	// OnResult, when non-nil, receives every one of this shard's cell
	// results — journaled ones replayed from the checkpoint and fresh
	// ones alike — in cell-index order, so a resumed run's output stream
	// is byte-identical to an uninterrupted one. A non-nil error aborts
	// the sweep (the checkpoint keeps everything journaled so far).
	OnResult func(sweep.CellResult) error
	// AfterCheckpoint, when non-nil, runs after each fresh cell is
	// journaled and emitted, with the number of this shard's cells done
	// so far (including restored ones) and the shard's total. A non-nil
	// error aborts the sweep at that cell boundary — the hook the
	// crash-resume tests use to kill a sweep deterministically.
	AfterCheckpoint func(done, total int) error
	// PerReplica selects replica-granularity durability: every completed
	// replica of an in-flight cell is journaled in its own fsynced
	// segment, so a crash mid-cell resumes from the last replica instead
	// of re-running the whole cell. Resume stays byte-identical either
	// way (the journaled prefix replays through the same fold, and the
	// remaining replicas draw the same seed stream). Worth it only when
	// a single cell's replicas dwarf a segment fsync — huge-n cells.
	PerReplica bool
	// AfterReplica, when non-nil, runs after each fresh replica is
	// journaled (PerReplica only), with the cell index and that cell's
	// completed-replica count so far. A non-nil error aborts the sweep at
	// that replica boundary — the mid-cell crash tests' kill hook.
	AfterReplica func(cellIndex, repsDone int) error
	// OnProgress, when non-nil, observes every progress record flushed to
	// the checkpoint directory (called under the progress lock; keep it
	// cheap). The CLI's stderr progress line hangs off it.
	OnProgress func(Progress)
	// ProgressEvery throttles progress flushes: at most one per interval
	// (plus a final one marking the shard done). Zero means a 500ms
	// default; negative disables the progress layer entirely — no
	// progress.json, no OnProgress calls.
	ProgressEvery time.Duration
	// FS is the filesystem the journal's write path publishes through
	// (nil = the real disk). Chaos tests and the CLI's fault-injection
	// flags hand a chaos.FaultFS in here; everything else leaves it nil.
	FS chaos.FS
}

// defaultProgressEvery is the progress flush throttle when Options leaves
// ProgressEvery zero.
const defaultProgressEvery = 500 * time.Millisecond

// Run executes one shard of the grid with per-cell checkpointing in dir.
// It returns the shard's cell results in cell-index order plus the
// shard's totals. Resumed runs return results byte-identical (through
// JSON) to an uninterrupted run of the same shard: restored cells
// round-trip exactly, fresh cells are deterministic by the cell-seed
// contract, and totals fold the exact per-cell accumulators in the same
// index order either way.
func Run(grid sweep.Grid, dir string, opt Options) ([]sweep.CellResult, sweep.Totals, error) {
	shards := opt.ShardCount
	if shards < 1 {
		shards = 1
	}
	if opt.ShardIndex < 0 || opt.ShardIndex >= shards {
		return nil, sweep.Totals{}, fmt.Errorf("sweepd: shard index %d outside [0,%d)", opt.ShardIndex, shards)
	}
	if dir == "" {
		return nil, sweep.Totals{}, fmt.Errorf("sweepd: empty checkpoint directory")
	}
	cells, err := grid.Cells()
	if err != nil {
		return nil, sweep.Totals{}, err
	}
	inShard := sweep.ShardSelect(opt.ShardIndex, shards)
	mine := make([]sweep.Cell, 0, len(cells)/shards+1)
	for _, c := range cells {
		if inShard(c) {
			mine = append(mine, c)
		}
	}

	var (
		j     *Journal
		recs  []CellRecord
		prior map[int][]sweep.ReplicaOutcome
	)
	fsys := fsOf(opt.FS)
	if opt.Resume {
		j, recs, prior, err = openResumeFS(fsys, dir, grid, opt.ShardIndex, shards)
	} else {
		j, err = createFS(fsys, dir, grid, opt.ShardIndex, shards)
	}
	if err != nil {
		return nil, sweep.Totals{}, err
	}

	restored := make(map[int]sweep.CellResult, len(recs))
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= len(cells) {
			return nil, sweep.Totals{}, fmt.Errorf("%w: cell index %d outside grid of %d cells",
				ErrStaleCheckpoint, rec.Index, len(cells))
		}
		if sweep.ShardOf(rec.Index, shards) != opt.ShardIndex {
			return nil, sweep.Totals{}, fmt.Errorf("%w: cell %d belongs to shard %d, not %d",
				ErrStaleCheckpoint, rec.Index, sweep.ShardOf(rec.Index, shards), opt.ShardIndex)
		}
		if err := cellMatches(cells[rec.Index], rec.Result.Cell); err != nil {
			return nil, sweep.Totals{}, err
		}
		restored[rec.Index] = rec.Restore()
	}
	for idx, outs := range prior {
		if idx < 0 || idx >= len(cells) {
			return nil, sweep.Totals{}, fmt.Errorf("%w: replica cell index %d outside grid of %d cells",
				ErrStaleCheckpoint, idx, len(cells))
		}
		if sweep.ShardOf(idx, shards) != opt.ShardIndex {
			return nil, sweep.Totals{}, fmt.Errorf("%w: replica cell %d belongs to shard %d, not %d",
				ErrStaleCheckpoint, idx, sweep.ShardOf(idx, shards), opt.ShardIndex)
		}
		if len(outs) > grid.Replicas {
			return nil, sweep.Totals{}, fmt.Errorf("%w: cell %d has %d journaled replicas, grid configures %d",
				ErrStaleCheckpoint, idx, len(outs), grid.Replicas)
		}
	}

	// Observability state. The journal mutex serialises the two paths
	// that write segments — per-replica appends from worker goroutines
	// and per-cell appends from the emitter lock. Wall times ride a side
	// channel from OnCellWall (which fires before the cell's OnResult)
	// to the journal write, keeping machine speed out of CellResult.
	var (
		jmu    sync.Mutex
		wallMu sync.Mutex
		walls  = make(map[int]float64)
	)
	progressOn := opt.ProgressEvery >= 0
	var prog *progressTracker
	if progressOn {
		prog = newProgressTracker(fsys, dir, opt.ProgressEvery, opt.OnProgress, len(mine))
		for _, rec := range recs {
			prog.addRestoredCell(rec)
		}
		for idx, outs := range prior {
			prog.addRestoredReplicas(idx, outs)
		}
	}

	// The emit path: fresh results arrive in increasing cell-index order
	// among the cells actually run (sweep.Run's ordered-streaming
	// contract), and the restored cells fill the gaps between them — so a
	// single cursor over this shard's cell list merges the two streams in
	// full index order. All of this runs inside sweep.Run's emitter lock,
	// so no extra synchronisation is needed.
	fresh := make(map[int]sweep.CellResult, len(mine)-len(restored))
	pos := 0
	done := len(restored)
	flushThrough := func(limit int) error {
		for pos < len(mine) && mine[pos].Index < limit {
			r, ok := restored[mine[pos].Index]
			if !ok {
				return fmt.Errorf("sweepd: internal error: cell %d neither restored nor run", mine[pos].Index)
			}
			if opt.OnResult != nil {
				if err := opt.OnResult(r); err != nil {
					return err
				}
			}
			pos++
		}
		return nil
	}

	sopt := sweep.Options{
		Workers:     opt.Workers,
		ForceScalar: opt.ForceScalar,
		Select: func(c sweep.Cell) bool {
			if !inShard(c) {
				return false
			}
			_, skip := restored[c.Index]
			return !skip
		},
		OnCellWall: func(c sweep.Cell, wall time.Duration) {
			wallMu.Lock()
			walls[c.Index] = float64(wall.Nanoseconds()) / 1e6
			wallMu.Unlock()
		},
		OnResult: func(r sweep.CellResult) error {
			if err := flushThrough(r.Index); err != nil {
				return err
			}
			if pos >= len(mine) || mine[pos].Index != r.Index {
				return fmt.Errorf("sweepd: internal error: fresh cell %d out of order", r.Index)
			}
			// Journal before emitting: a crash between the two re-runs
			// nothing (the resumed run re-emits the whole stream anyway),
			// while the opposite order could emit a cell that was never
			// made durable.
			wallMu.Lock()
			wms := walls[r.Index]
			delete(walls, r.Index)
			wallMu.Unlock()
			jmu.Lock()
			j.AppendTimed(r, wms)
			cerr := j.Checkpoint()
			jmu.Unlock()
			if cerr != nil {
				return cerr
			}
			fresh[r.Index] = r
			if prog != nil {
				prog.cellDone(r)
			}
			if opt.OnResult != nil {
				if err := opt.OnResult(r); err != nil {
					return err
				}
			}
			pos++
			done++
			if opt.AfterCheckpoint != nil {
				if err := opt.AfterCheckpoint(done, len(mine)); err != nil {
					return err
				}
			}
			return nil
		},
	}
	if len(prior) > 0 {
		// The map is read-only for the whole run, so worker goroutines
		// can consult it without locking.
		sopt.ResumeReplicas = func(c sweep.Cell) []sweep.ReplicaOutcome {
			return prior[c.Index]
		}
	}
	if opt.PerReplica || prog != nil {
		sopt.OnReplica = func(c sweep.Cell, rep int, out sweep.ReplicaOutcome) error {
			if opt.PerReplica && rep < grid.Replicas-1 {
				// The final replica is never journaled on its own: the
				// cell record that follows immediately folds it, and a
				// crash in the gap merely re-runs that one replica.
				jmu.Lock()
				j.AppendReplica(c.Index, rep, out)
				cerr := j.Checkpoint()
				jmu.Unlock()
				if cerr != nil {
					return cerr
				}
			}
			if prog != nil {
				prog.replicaDone(c.Index, out)
			}
			if opt.PerReplica && opt.AfterReplica != nil {
				return opt.AfterReplica(c.Index, rep+1)
			}
			return nil
		}
	}
	_, _, err = sweep.Run(grid, sopt)
	if err != nil {
		return nil, sweep.Totals{}, err
	}
	if err := flushThrough(math.MaxInt); err != nil {
		return nil, sweep.Totals{}, err
	}
	if prog != nil {
		prog.finish()
	}

	out := make([]sweep.CellResult, len(mine))
	for i, c := range mine {
		r, ok := fresh[c.Index]
		if !ok {
			r = restored[c.Index]
		}
		out[i] = r
	}
	return out, sweep.TotalsOf(out), nil
}

// progressTracker accumulates the shard's observability counters and
// flushes them — throttled — as the advisory progress record. In-flight
// cells' replica contributions are tracked per cell so a finished cell
// swaps its replica-level sums for its exact cell-level totals.
type progressTracker struct {
	mu    sync.Mutex
	fs    chaos.FS
	dir   string
	start time.Time
	every time.Duration
	last  time.Time
	on    func(Progress)
	p     Progress
	// Per-cell sums of in-flight replica contributions, removed when the
	// cell completes.
	infInts  map[int]float64
	infTrans map[int]int
	infReps  map[int]int
}

func newProgressTracker(fsys chaos.FS, dir string, every time.Duration, on func(Progress), total int) *progressTracker {
	if every == 0 {
		every = defaultProgressEvery
	}
	now := time.Now()
	// last starts at now, not zero: the first record flushes one throttle
	// interval in, like every later one. Sweeps shorter than the interval
	// write only the final record — the fixed cost of being observable
	// must not register on runs too short to observe.
	return &progressTracker{
		fs: fsOf(fsys), dir: dir, start: now, every: every, last: now, on: on,
		p:       Progress{CellsTotal: total},
		infInts: map[int]float64{}, infTrans: map[int]int{}, infReps: map[int]int{},
	}
}

// addRestoredCell seeds the counters with one journaled complete cell.
// Called before the sweep starts; no locking needed.
func (t *progressTracker) addRestoredCell(rec CellRecord) {
	m := rec.Result.Interactions
	t.p.CellsDone++
	t.p.Interactions += m.Mean * float64(m.Count)
	t.p.Transmissions += rec.Result.Transmissions
}

// addRestoredReplicas seeds the counters with a journaled mid-cell
// replica prefix. Called before the sweep starts; no locking needed.
func (t *progressTracker) addRestoredReplicas(idx int, outs []sweep.ReplicaOutcome) {
	for _, o := range outs {
		t.p.ReplicasDone++
		t.p.Interactions += o.Interactions
		t.p.Transmissions += o.Transmissions
		t.infInts[idx] += o.Interactions
		t.infTrans[idx] += o.Transmissions
		t.infReps[idx]++
	}
}

func (t *progressTracker) replicaDone(idx int, out sweep.ReplicaOutcome) {
	t.mu.Lock()
	t.p.ReplicasDone++
	t.p.Interactions += out.Interactions
	t.p.Transmissions += out.Transmissions
	t.infInts[idx] += out.Interactions
	t.infTrans[idx] += out.Transmissions
	t.infReps[idx]++
	t.maybeFlush()
	t.mu.Unlock()
}

func (t *progressTracker) cellDone(r sweep.CellResult) {
	m := r.Interactions
	t.mu.Lock()
	t.p.CellsDone++
	t.p.FreshCells++
	t.p.ReplicasDone -= t.infReps[r.Index]
	t.p.Interactions += m.Mean*float64(m.Count) - t.infInts[r.Index]
	t.p.Transmissions += r.Transmissions - t.infTrans[r.Index]
	delete(t.infReps, r.Index)
	delete(t.infInts, r.Index)
	delete(t.infTrans, r.Index)
	t.maybeFlush()
	t.mu.Unlock()
}

func (t *progressTracker) maybeFlush() {
	now := time.Now()
	if now.Sub(t.last) < t.every {
		return
	}
	t.last = now
	t.flushLocked()
}

// flushLocked writes the progress record. The write is best-effort by
// contract: an advisory file must never be able to abort a sweep, so its
// error is dropped.
func (t *progressTracker) flushLocked() {
	t.p.ElapsedMs = float64(time.Since(t.start).Nanoseconds()) / 1e6
	p := t.p
	_ = writeProgress(t.fs, t.dir, p)
	if t.on != nil {
		t.on(p)
	}
}

// finish flushes the final record, marking the shard done when every
// assigned cell is journaled.
func (t *progressTracker) finish() {
	t.mu.Lock()
	t.p.Done = t.p.CellsDone == t.p.CellsTotal
	t.flushLocked()
	t.mu.Unlock()
}

// cellMatches verifies a journaled cell's identity against the grid's
// cell at the same index — a belt-and-braces check behind the fingerprint
// (which already pins the whole grid).
func cellMatches(want, got sweep.Cell) error {
	if want.Index != got.Index || want.Seed != got.Seed || want.N != got.N ||
		want.Algorithm != got.Algorithm || want.Provenance != got.Provenance ||
		want.Scenario.String() != got.Scenario.String() {
		return fmt.Errorf("%w: journaled cell %d is %s/%s/n=%d seed=%d, grid expects %s/%s/n=%d seed=%d",
			ErrStaleCheckpoint, got.Index, got.Scenario, got.Algorithm, got.N, got.Seed,
			want.Scenario, want.Algorithm, want.N, want.Seed)
	}
	return nil
}

// Merge stitches the checkpoints of a complete m-way sharded sweep back
// into the single-process result stream: every dir must hold one finished
// shard of the same grid (same fingerprint, same shard count, each shard
// index exactly once, every shard cell journaled). It returns all cell
// results in cell-index order plus the fleet totals, both byte-identical
// (through JSON) to an uninterrupted unsharded run — the totals because
// they fold the exact journaled per-cell accumulators in cell-index
// order, exactly as sweep.Run does.
func Merge(dirs []string) ([]sweep.CellResult, sweep.Totals, error) {
	_, results, totals, err := LoadFleet(dirs)
	return results, totals, err
}

// LoadFleet is the one checkpoint-directory validation path every
// cross-checkpoint consumer shares: `dodasweep merge` and `dodasweep
// analyze` both read fleets through it, so a stale or foreign journal
// fails with the same grid-fingerprint error no matter which subcommand
// tripped over it. It reads and cross-validates the checkpoints of a
// complete sharded sweep (a single unsharded checkpoint is the
// one-directory case) and returns the fleet's identity header plus all
// cell results in cell-index order and the exact fleet totals.
func LoadFleet(dirs []string) (Header, []sweep.CellResult, sweep.Totals, error) {
	base, results, haveCell, err := loadFleet(dirs, false)
	if err != nil {
		return Header{}, nil, sweep.Totals{}, err
	}
	missing := 0
	firstMissing := -1
	for i, ok := range haveCell {
		if !ok {
			missing++
			if firstMissing < 0 {
				firstMissing = i
			}
		}
	}
	if missing > 0 {
		return Header{}, nil, sweep.Totals{}, fmt.Errorf(
			"sweepd: %d cell(s) missing (first: cell %d, shard %d not finished — resume it before merging or analyzing)",
			missing, firstMissing, sweep.ShardOf(firstMissing, base.ShardCount))
	}
	return base, results, sweep.TotalsOf(results), nil
}

// LoadFleetPartial reads however much of a fleet exists right now: the
// directories may cover only some shards, and any shard may be mid-run.
// Validation is the same as LoadFleet minus the completeness checks —
// fingerprints must agree, no shard or cell may appear twice, every
// journaled cell must match the grid. It returns the fleet identity, the
// complete cells present (in cell-index order), and the grid's total
// cell count, so callers can annotate coverage. Partial analysis builds
// on it.
func LoadFleetPartial(dirs []string) (Header, []sweep.CellResult, int, error) {
	base, results, haveCell, err := loadFleet(dirs, true)
	if err != nil {
		return Header{}, nil, 0, err
	}
	present := make([]sweep.CellResult, 0, len(results))
	for i, ok := range haveCell {
		if ok {
			present = append(present, results[i])
		}
	}
	return base, present, len(haveCell), nil
}

// loadFleet is the shared walk behind LoadFleet and LoadFleetPartial:
// it reads every directory, cross-validates identities, and returns the
// grid-indexed results plus the per-cell presence mask. partial relaxes
// only the directories-must-cover-every-shard check.
func loadFleet(dirs []string, partial bool) (Header, []sweep.CellResult, []bool, error) {
	if len(dirs) == 0 {
		return Header{}, nil, nil, fmt.Errorf("sweepd: need at least one checkpoint directory")
	}
	var (
		base     Header
		results  []sweep.CellResult
		haveCell []bool
		cells    []sweep.Cell
		seenDir  []string
	)
	fail := func(err error) (Header, []sweep.CellResult, []bool, error) {
		return Header{}, nil, nil, err
	}
	for di, dir := range dirs {
		h, recs, err := ReadCheckpoint(dir)
		if err != nil {
			return fail(fmt.Errorf("sweepd: fleet %s: %w", dir, err))
		}
		if di == 0 {
			base = h
			// Re-derive the cell list from the journaled grid and verify
			// the fingerprint actually matches it, so a hand-edited
			// header cannot relabel foreign results.
			fp, err := h.Grid.Fingerprint()
			if err != nil {
				return fail(fmt.Errorf("sweepd: fleet %s: %w", dir, err))
			}
			if fp != h.Fingerprint {
				return fail(fmt.Errorf("%w: %s: header fingerprint does not match its own grid", ErrCorrupt, dir))
			}
			if cells, err = h.Grid.Cells(); err != nil {
				return fail(fmt.Errorf("sweepd: fleet %s: %w", dir, err))
			}
			if !partial && h.ShardCount != len(dirs) {
				return fail(fmt.Errorf("sweepd: checkpoint declares %d shard(s), got %d directories",
					h.ShardCount, len(dirs)))
			}
			if partial && len(dirs) > h.ShardCount {
				return fail(fmt.Errorf("sweepd: checkpoint declares %d shard(s), got %d directories",
					h.ShardCount, len(dirs)))
			}
			results = make([]sweep.CellResult, len(cells))
			haveCell = make([]bool, len(cells))
			seenDir = make([]string, h.ShardCount)
		} else {
			if h.Fingerprint != base.Fingerprint || h.Version != base.Version {
				return fail(fmt.Errorf("%w: %s holds a different grid than %s (fingerprint %.12s, want %.12s)",
					ErrStaleCheckpoint, dir, dirs[0], h.Fingerprint, base.Fingerprint))
			}
			if h.ShardCount != base.ShardCount {
				return fail(fmt.Errorf("%w: %s declares %d shards, %s declares %d",
					ErrStaleCheckpoint, dir, h.ShardCount, dirs[0], base.ShardCount))
			}
		}
		if h.ShardIndex < 0 || h.ShardIndex >= base.ShardCount {
			return fail(fmt.Errorf("%w: %s: shard index %d outside [0,%d)",
				ErrCorrupt, dir, h.ShardIndex, base.ShardCount))
		}
		if prev := seenDir[h.ShardIndex]; prev != "" {
			return fail(fmt.Errorf("sweepd: %s and %s both hold shard %d", prev, dir, h.ShardIndex))
		}
		seenDir[h.ShardIndex] = dir
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(cells) {
				return fail(fmt.Errorf("%w: %s: cell index %d outside grid of %d cells",
					ErrCorrupt, dir, rec.Index, len(cells)))
			}
			if sweep.ShardOf(rec.Index, base.ShardCount) != h.ShardIndex {
				return fail(fmt.Errorf("%w: %s: cell %d belongs to shard %d, not %d",
					ErrCorrupt, dir, rec.Index, sweep.ShardOf(rec.Index, base.ShardCount), h.ShardIndex))
			}
			if haveCell[rec.Index] {
				return fail(fmt.Errorf("%w: cell %d journaled by more than one shard", ErrCorrupt, rec.Index))
			}
			if err := cellMatches(cells[rec.Index], rec.Result.Cell); err != nil {
				return fail(fmt.Errorf("sweepd: fleet %s: %w", dir, err))
			}
			results[rec.Index] = rec.Restore()
			haveCell[rec.Index] = true
		}
	}
	return base, results, haveCell, nil
}
