package sweepd

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"doda/internal/sweep"
)

// Watcher tails one shard's live checkpoint directory read-only. It
// never writes, repairs, or locks anything, so it can run against a
// directory another process is actively journaling into. Safety comes
// from the journal's publication discipline — segments appear atomically
// (tmp + rename) and are immutable once published — plus deliberate
// tolerance for the two transient shapes a live or crashed writer can
// leave: a torn tail (the valid prefix is counted, the tail ignored;
// a resumed writer's repair keeps exactly that prefix, so the view never
// regresses) and in-progress tmp files (skipped entirely). Semantic
// corruption on intact lines — duplicate cells, disagreeing headers —
// still surfaces as an error, exactly like ReadCheckpoint.
//
// Parsed segments are cached keyed by (size, mtime), so a poll of an
// N-segment directory reads only the segments that changed since the
// last poll — normally just the newly published ones.
//
// A Watcher is not goroutine-safe; poll it from one goroutine.
type Watcher struct {
	dir  string
	segs map[string]*segView
	// shardCells caches the shard's assigned-cell count once the header
	// is known (computing it enumerates the grid).
	shardCells int
	haveCells  bool
}

// segView is one cached parsed segment: totals only, never raw records,
// so a long-running watch holds O(cells) tiny structs.
type segView struct {
	size    int64
	mtimeNs int64
	header  Header
	cells   []cellView
	reps    []repView
}

type cellView struct {
	index         int
	interactions  float64
	transmissions int
	wallMs        float64
}

type repView struct {
	cell, rep     int
	interactions  float64
	transmissions int
}

// Snapshot is one consistent view of a shard's progress.
type Snapshot struct {
	// Header identifies the shard (valid once at least segment 0 has
	// been published and read intact).
	Header Header
	// CellsDone / CellsTotal count journaled complete cells against the
	// shard's assignment.
	CellsDone  int
	CellsTotal int
	// ReplicasDone counts journaled replicas of cells still in flight
	// (nonzero only under per-replica checkpointing).
	ReplicasDone int
	// Interactions / Transmissions total everything journaled so far,
	// including in-flight cells' replica records.
	Interactions  float64
	Transmissions int
	// WallMsSum is the summed journaled per-cell wall time — the basis
	// for cells/sec and ETA estimates that survive process restarts.
	WallMsSum float64
	// DoneIndexes lists the journaled complete cell indexes in journal
	// order (partial analysis and merge previews build on it).
	DoneIndexes []int
	// Progress is the shard's advisory progress record, if present and
	// intact; nil otherwise.
	Progress *Progress
}

// NewWatcher tails the checkpoint directory at dir.
func NewWatcher(dir string) *Watcher {
	return &Watcher{dir: dir, segs: make(map[string]*segView)}
}

// Snapshot polls the directory and returns the current progress view.
// A directory with no published segments yet is ErrNoCheckpoint.
func (w *Watcher) Snapshot() (*Snapshot, error) {
	names, err := segmentNames(w.dir, false)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, w.dir)
	}
	current := make(map[string]bool, len(names))
	for _, name := range names {
		current[name] = true
		if err := w.refresh(name); err != nil {
			return nil, err
		}
	}
	// Drop cache entries for segments a repair removed outright.
	for name := range w.segs {
		if !current[name] {
			delete(w.segs, name)
		}
	}
	return w.assemble(names)
}

// refresh (re)parses one segment if its (size, mtime) changed since the
// cached parse. A segment that vanishes between listing and stat — a
// repair racing the poll — is treated as unchanged-this-poll; the next
// poll's listing drops it.
func (w *Watcher) refresh(name string) error {
	path := filepath.Join(w.dir, name)
	fi, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if sv, ok := w.segs[name]; ok && sv.size == fi.Size() && sv.mtimeNs == fi.ModTime().UnixNano() {
		return nil
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	sv := &segView{size: fi.Size(), mtimeNs: fi.ModTime().UnixNano()}
	lines, _ := splitLines(raw)
	for li, line := range lines {
		body, err := decodeLine(line)
		if err != nil {
			// A frame/crc failure is a torn write: count the valid
			// prefix, ignore the rest. Unlike readCheckpoint, a live
			// reader tolerates this in any segment — it may hold a stale
			// listing while the writer repairs and appends, and the
			// valid prefix is correct either way.
			break
		}
		if li == 0 {
			var h Header
			if err := json.Unmarshal(body, &h); err != nil {
				break // torn-looking header: treat segment as empty for now
			}
			if h.Version != recordVersion {
				return fmt.Errorf("%w: segment %s has version %d, this reader speaks %d",
					ErrStaleCheckpoint, name, h.Version, recordVersion)
			}
			sv.header = h
			continue
		}
		var probe struct {
			Result *json.RawMessage `json:"result"`
			Out    *json.RawMessage `json:"out"`
		}
		if err := json.Unmarshal(body, &probe); err != nil {
			return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
		}
		switch {
		case probe.Result != nil:
			var rec CellRecord
			if err := json.Unmarshal(body, &rec); err != nil {
				return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
			}
			cv := cellView{
				index:         rec.Index,
				transmissions: rec.Result.Transmissions,
				wallMs:        rec.WallMs,
			}
			m := rec.Result.Interactions
			cv.interactions = m.Mean * float64(m.Count)
			sv.cells = append(sv.cells, cv)
		case probe.Out != nil:
			var rec ReplicaRecord
			if err := json.Unmarshal(body, &rec); err != nil {
				return fmt.Errorf("%w: segment %s record %d: %v", ErrCorrupt, name, li, err)
			}
			sv.reps = append(sv.reps, repView{
				cell: rec.CellIndex, rep: rec.Rep,
				interactions:  rec.Out.Interactions,
				transmissions: rec.Out.Transmissions,
			})
		default:
			return fmt.Errorf("%w: segment %s record %d: neither a cell nor a replica record", ErrCorrupt, name, li)
		}
	}
	w.segs[name] = sv
	return nil
}

// assemble folds the cached segment views, in segment order, into one
// snapshot, enforcing the same semantic invariants as readCheckpoint:
// one header identity, no duplicate cells, contiguous replica prefixes.
func (w *Watcher) assemble(names []string) (*Snapshot, error) {
	snap := &Snapshot{}
	headerKnown := false
	done := make(map[int]string)
	repSeen := make(map[int]int)
	repInts := make(map[int]float64)
	repTrans := make(map[int]int)
	for _, name := range names {
		sv, ok := w.segs[name]
		if !ok {
			continue // vanished mid-poll; next poll settles it
		}
		if sv.header.Version != 0 {
			if !headerKnown {
				snap.Header = sv.header
				headerKnown = true
			} else if !snap.Header.matches(sv.header) {
				return nil, fmt.Errorf("%w: segment %s header disagrees with earlier segments", ErrStaleCheckpoint, name)
			}
		}
		for _, rv := range sv.reps {
			if prev, isDone := done[rv.cell]; isDone {
				return nil, fmt.Errorf("%w: replica record for cell %d in %s after its cell record in %s",
					ErrCorrupt, rv.cell, name, prev)
			}
			if rv.rep != repSeen[rv.cell] {
				return nil, fmt.Errorf("%w: cell %d replica %d in %s but %d replica(s) precede it",
					ErrCorrupt, rv.cell, rv.rep, name, repSeen[rv.cell])
			}
			repSeen[rv.cell]++
			repInts[rv.cell] += rv.interactions
			repTrans[rv.cell] += rv.transmissions
		}
		for _, cv := range sv.cells {
			if prev, dup := done[cv.index]; dup {
				return nil, fmt.Errorf("%w: cell %d journaled in both %s and %s", ErrCorrupt, cv.index, prev, name)
			}
			done[cv.index] = name
			snap.DoneIndexes = append(snap.DoneIndexes, cv.index)
			snap.Interactions += cv.interactions
			snap.Transmissions += cv.transmissions
			snap.WallMsSum += cv.wallMs
			// The cell record folds its replica prefix; drop the prefix
			// so only in-flight cells contribute replica-level counts.
			delete(repSeen, cv.index)
			delete(repInts, cv.index)
			delete(repTrans, cv.index)
		}
	}
	if !headerKnown {
		return nil, fmt.Errorf("%w: no readable header yet", ErrNoCheckpoint)
	}
	snap.CellsDone = len(done)
	for idx, n := range repSeen {
		snap.ReplicasDone += n
		snap.Interactions += repInts[idx]
		snap.Transmissions += repTrans[idx]
	}
	if !w.haveCells {
		cells, err := snap.Header.Grid.Cells()
		if err != nil {
			return nil, err
		}
		count := 0
		for i := range cells {
			if sweep.ShardOf(i, snap.Header.ShardCount) == snap.Header.ShardIndex {
				count++
			}
		}
		w.shardCells = count
		w.haveCells = true
	}
	snap.CellsTotal = w.shardCells
	if p, err := ReadProgress(w.dir); err == nil {
		snap.Progress = p
	}
	return snap, nil
}
