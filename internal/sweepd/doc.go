// Package sweepd is the checkpointed, resumable sweep service layered
// on internal/sweep: long grids journal every completed cell and
// survive crashes, restarts and multi-process sharding without changing
// a single output byte.
//
// # Checkpoint format
//
// A checkpoint is a directory of immutable JSONL segments named
// seg-00000000.jsonl, seg-00000001.jsonl, … (zero-padded so
// lexicographic order is numeric order). Every line is one crc-framed
// record: 8 lowercase hex digits of the CRC-32C (Castagnoli) of the
// JSON body, one space, the body, '\n'. The first record of every
// segment is the Header — schema version, grid fingerprint, shard
// index/count, and the grid itself — and every further record is one
// CellRecord: the cell's result exactly as the streaming JSONL output
// encodes it, plus the raw Welford duration accumulator the rounded
// metric cannot reconstruct (what makes resumed and merged fleet totals
// fold bit-for-bit).
//
// Segments are published atomically: written to a .tmp file, fsynced,
// renamed to the final name, directory fsynced. A crash can therefore
// never leave a half-written segment under a final name; the worst
// case is a torn tail on the final segment (power cut on a non-atomic
// filesystem), which Open drops and durably repairs, costing at most
// the cells of that segment. Corruption anywhere else — a bad crc
// mid-stream, a header mismatch between segments, a duplicate cell —
// is fatal (ErrCorrupt): repairing it away would silently destroy
// journaled results.
//
// # Identity and staleness
//
// The Header's fingerprint (sweep.Grid.Fingerprint, a versioned sha256
// of the canonical grid JSON) is the cell-identity contract: a journal
// written for one grid is rejected by any other (ErrStaleCheckpoint),
// so a stale checkpoint can never smuggle results into a changed
// sweep. LoadFleet is the one cross-checkpoint validation path —
// `dodasweep merge` and `dodasweep analyze` both read fleets through
// it, so a stale or foreign journal fails identically in both.
//
// # Resume and merge semantics
//
// Run journals each completed cell before emitting it, skips journaled
// cells on resume, and re-emits the full stream in cell-index order —
// byte-identical to an uninterrupted run, provable from the per-cell
// deterministic seed contract (a cell's result depends only on the grid
// and its index, never on which process ran it or when). ShardOf
// partitions the cell index space disjointly with a stable hash, so m
// independent processes each journaling their own shard cover the grid
// exactly once, and Merge stitches the m checkpoints back into the
// single-process byte stream plus exact fleet totals.
package sweepd
