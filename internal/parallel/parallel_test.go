package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapOrdered(t *testing.T) {
	got, err := Map(10, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapNegative(t *testing.T) {
	if _, err := Map(-1, 4, func(int) (int, error) { return 0, nil }); err == nil {
		t.Error("want error")
	}
}

func TestMapSingleWorkerFallback(t *testing.T) {
	got, err := Map(5, 0, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestMapFirstErrorByInputOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	_, err := Map(10, 4, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errB
		case 3:
			return 0, errA
		default:
			return i, nil
		}
	})
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want first-by-order %v", err, errA)
	}
}

func TestMapPanicConverted(t *testing.T) {
	_, err := Map(4, 2, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	var active, peak atomic.Int32
	_, err := Map(64, 3, func(i int) (int, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer active.Add(-1)
		// Busy-wait briefly so workers overlap.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency %d exceeds worker bound 3", p)
	}
}

func TestQuickMapIdentity(t *testing.T) {
	f := func(nRaw, wRaw uint8) bool {
		n := int(nRaw % 64)
		w := int(wRaw%8) + 1
		got, err := Map(n, w, func(i int) (int, error) { return i, nil })
		if err != nil || len(got) != n {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapWorkersIndexInRange(t *testing.T) {
	const n, workers = 100, 7
	seen := make([]int32, n)
	_, err := MapWorkers(n, workers, func(w, i int) (int, error) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of [0,%d)", w, workers)
		}
		atomic.AddInt32(&seen[i], 1)
		return w, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("item %d processed %d times", i, c)
		}
	}
}

// TestMapWorkersScratchIsSingleThreaded pins the property sweep relies
// on: each worker index is one goroutine, so per-worker scratch needs no
// locking. Unsynchronised per-worker counters must add up exactly (the
// race detector additionally proves the absence of sharing).
func TestMapWorkersScratchIsSingleThreaded(t *testing.T) {
	const n, workers = 500, 5
	counters := make([]int, workers) // deliberately not atomic
	_, err := MapWorkers(n, workers, func(w, _ int) (int, error) {
		counters[w]++
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != n {
		t.Errorf("per-worker counters sum to %d, want %d", total, n)
	}
}

// TestMapWorkersAbortsTailAfterError: once an item errors, items beyond
// it are skipped (a sweep with a dead output stream must stop, not run
// for hours), while items before it still run — preserving the
// first-error-by-input-order contract.
func TestMapWorkersAbortsTailAfterError(t *testing.T) {
	const n = 10000
	var ran atomic.Int32
	boom := errors.New("boom")
	_, err := MapWorkers(n, 2, func(_, i int) (int, error) {
		ran.Add(1)
		if i == 50 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Items 0..50 must run; with 2 workers only a handful of in-flight
	// items past 50 may sneak in before the abort flag lands.
	if got := ran.Load(); got < 51 || got > n/2 {
		t.Errorf("ran %d of %d items; want all of 0..50 and an aborted tail", got, n)
	}
}
