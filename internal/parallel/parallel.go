// Package parallel provides a small deterministic fan-out helper: run one
// function per item on a bounded worker pool and collect results in input
// order. Used by dodabench to run independent experiments concurrently —
// safe because every experiment derives its randomness from its own seed,
// so concurrency cannot change any reported number.
package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Map runs f(i) for every i in [0, n) on at most workers goroutines and
// returns the results in input order. The first error (by input order) is
// returned alongside the partial results; panics in f are converted to
// errors rather than crashing the process.
func Map[T any](n, workers int, f func(i int) (T, error)) ([]T, error) {
	return MapWorkers(n, workers, func(_, i int) (T, error) { return f(i) })
}

// MapWorkers is Map with the worker index (0 <= worker < workers) passed
// to f alongside the item index. Each worker is one goroutine processing
// items sequentially, so f may keep per-worker scratch state — reusable
// engines, buffers, accumulators — indexed by worker without locking.
//
// An error aborts the tail: items with a larger index than the earliest
// erroring item are skipped once the error lands (items with smaller
// indexes always run, so the first-error-by-input-order contract is
// unchanged). A dead output stream therefore stops a multi-hour sweep
// within one in-flight item per worker instead of running it to the end.
func MapWorkers[T any](n, workers int, f func(worker, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("parallel: negative item count %d", n)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}

	// abortAt holds the smallest item index that returned an error (n =
	// none yet); items beyond it are skipped rather than executed.
	var abortAt atomic.Int64
	abortAt.Store(int64(n))

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				if int64(i) > abortAt.Load() {
					continue
				}
				results[i], errs[i] = safeCall(f, w, i)
				if errs[i] != nil {
					for {
						cur := abortAt.Load()
						if int64(i) >= cur || abortAt.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("parallel: item %d: %w", i, err)
		}
	}
	return results, nil
}

// safeCall invokes f(w, i), converting panics into errors so one faulty
// item cannot take down the pool.
func safeCall[T any](f func(worker, i int) (T, error), w, i int) (result T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return f(w, i)
}
