// Package seq models dynamic graphs the way the paper does: as a couple
// (V, I) where I = (I_t) is a sequence of pairwise interactions whose
// index is its time of occurrence. It provides materialised finite
// sequences, lazily-materialised unbounded streams (the randomized
// adversary's output), generators, per-node futures, the underlying graph
// Ḡ, and meet-time indexes used by the meetTime knowledge oracle.
package seq

import (
	"fmt"
	"sort"

	"doda/internal/graph"
	"doda/internal/rng"
)

// Interaction is one pairwise interaction {U, V}, stored canonically with
// U < V. Its time of occurrence is its index in the enclosing sequence.
type Interaction struct {
	U, V graph.NodeID
}

// NewInteraction returns the canonical Interaction for {a, b}; it rejects
// self-interactions and negative identifiers, so a canonical Interaction
// only ever needs an upper range check downstream.
func NewInteraction(a, b graph.NodeID) (Interaction, error) {
	if a < 0 || b < 0 {
		return Interaction{}, fmt.Errorf("seq: negative node id in {%d,%d}", a, b)
	}
	if a == b {
		return Interaction{}, fmt.Errorf("seq: node %d cannot interact with itself", a)
	}
	if a > b {
		a, b = b, a
	}
	return Interaction{U: a, V: b}, nil
}

// MustInteraction is NewInteraction for literals; it panics on self-pairs.
func MustInteraction(a, b graph.NodeID) Interaction {
	i, err := NewInteraction(a, b)
	if err != nil {
		panic(err)
	}
	return i
}

// Involves reports whether u is an endpoint of the interaction.
func (i Interaction) Involves(u graph.NodeID) bool {
	return i.U == u || i.V == u
}

// Other returns the endpoint that is not u and whether u participates.
func (i Interaction) Other(u graph.NodeID) (graph.NodeID, bool) {
	switch u {
	case i.U:
		return i.V, true
	case i.V:
		return i.U, true
	default:
		return 0, false
	}
}

// String renders the interaction as {u,v}.
func (i Interaction) String() string {
	return fmt.Sprintf("{%d,%d}", i.U, i.V)
}

// TimedStep is one entry of a node's future: at time T the node interacts
// with node With.
type TimedStep struct {
	T    int
	With graph.NodeID
}

// View is read access to an interaction sequence. At may materialise lazy
// streams and therefore is not safe for concurrent use unless documented
// otherwise by the implementation.
type View interface {
	// N returns the number of nodes in V.
	N() int
	// At returns the interaction occurring at time t >= 0.
	At(t int) Interaction
	// Bound returns the sequence length when the sequence is finite.
	Bound() (length int, finite bool)
}

// Sequence is a finite, fully materialised interaction sequence.
type Sequence struct {
	n     int
	steps []Interaction
}

var _ View = (*Sequence)(nil)

// NewSequence validates steps against the node count n and copies them
// into a Sequence.
func NewSequence(n int, steps []Interaction) (*Sequence, error) {
	if n < 2 {
		return nil, fmt.Errorf("seq: need at least 2 nodes, got %d", n)
	}
	cp := make([]Interaction, len(steps))
	for t, it := range steps {
		canon, err := NewInteraction(it.U, it.V)
		if err != nil {
			return nil, fmt.Errorf("seq: step %d: %w", t, err)
		}
		if int(canon.V) >= n {
			return nil, fmt.Errorf("seq: step %d: interaction %v out of range [0,%d)", t, canon, n)
		}
		cp[t] = canon
	}
	return &Sequence{n: n, steps: cp}, nil
}

// N returns the number of nodes.
func (s *Sequence) N() int { return s.n }

// Len returns the number of interactions.
func (s *Sequence) Len() int { return len(s.steps) }

// Bound returns (Len, true).
func (s *Sequence) Bound() (int, bool) { return len(s.steps), true }

// At returns the interaction at time t; it panics when t is out of range,
// mirroring slice indexing (callers are expected to respect Bound).
func (s *Sequence) At(t int) Interaction {
	return s.steps[t]
}

// Slice returns the sub-sequence of interactions with times in [from, to).
// Bounds are clamped to the valid range.
func (s *Sequence) Slice(from, to int) *Sequence {
	if from < 0 {
		from = 0
	}
	if to > len(s.steps) {
		to = len(s.steps)
	}
	if from > to {
		from = to
	}
	cp := make([]Interaction, to-from)
	copy(cp, s.steps[from:to])
	return &Sequence{n: s.n, steps: cp}
}

// Concat returns s followed by t. Both must share the node count.
func (s *Sequence) Concat(t *Sequence) (*Sequence, error) {
	if s.n != t.n {
		return nil, fmt.Errorf("seq: node count mismatch %d vs %d", s.n, t.n)
	}
	steps := make([]Interaction, 0, len(s.steps)+len(t.steps))
	steps = append(steps, s.steps...)
	steps = append(steps, t.steps...)
	return &Sequence{n: s.n, steps: steps}, nil
}

// Repeat returns s repeated k times (k >= 0).
func (s *Sequence) Repeat(k int) *Sequence {
	if k < 0 {
		k = 0
	}
	steps := make([]Interaction, 0, len(s.steps)*k)
	for i := 0; i < k; i++ {
		steps = append(steps, s.steps...)
	}
	return &Sequence{n: s.n, steps: steps}
}

// UnderlyingGraph returns Ḡ = (V, E) with {u,v} ∈ E iff u and v interact
// at least once in the sequence (the paper's §3.2 definition).
func (s *Sequence) UnderlyingGraph() *graph.Undirected {
	g, err := graph.NewUndirected(s.n)
	if err != nil {
		// Unreachable: n >= 2 is enforced by the constructor.
		panic(err)
	}
	for _, it := range s.steps {
		if err := g.AddEdge(it.U, it.V); err != nil {
			panic(err) // unreachable: steps validated at construction
		}
	}
	return g
}

// FutureOf returns all interactions involving u with their times, in time
// order. This is the paper's u.future knowledge.
func (s *Sequence) FutureOf(u graph.NodeID) []TimedStep {
	var out []TimedStep
	for t, it := range s.steps {
		if w, ok := it.Other(u); ok {
			out = append(out, TimedStep{T: t, With: w})
		}
	}
	return out
}

// Stream is an unbounded interaction sequence, materialised lazily from a
// generator function and cached, so that repeated reads (including the
// look-ahead reads of the meetTime oracle) observe a single consistent
// sequence. Not safe for concurrent use.
type Stream struct {
	n     int
	gen   func(t int) Interaction
	steps []Interaction
}

var _ View = (*Stream)(nil)

// NewStream returns a Stream over n nodes driven by gen. The generator is
// invoked exactly once per time step, in increasing time order.
func NewStream(n int, gen func(t int) Interaction) (*Stream, error) {
	if n < 2 {
		return nil, fmt.Errorf("seq: need at least 2 nodes, got %d", n)
	}
	if gen == nil {
		return nil, fmt.Errorf("seq: nil generator")
	}
	return &Stream{n: n, gen: gen}, nil
}

// N returns the number of nodes.
func (s *Stream) N() int { return s.n }

// Bound reports the stream as unbounded.
func (s *Stream) Bound() (int, bool) { return 0, false }

// At returns the interaction at time t, materialising the prefix as
// needed.
func (s *Stream) At(t int) Interaction {
	for len(s.steps) <= t {
		it := s.gen(len(s.steps))
		if it.U > it.V {
			it.U, it.V = it.V, it.U
		}
		s.steps = append(s.steps, it)
	}
	return s.steps[t]
}

// MaterializedLen returns how many interactions have been generated so
// far.
func (s *Stream) MaterializedLen() int { return len(s.steps) }

// Prefix returns the first k interactions as a finite Sequence,
// materialising them if necessary.
func (s *Stream) Prefix(k int) *Sequence {
	if k < 0 {
		k = 0
	}
	if k > 0 {
		s.At(k - 1)
	}
	cp := make([]Interaction, k)
	copy(cp, s.steps[:k])
	return &Sequence{n: s.n, steps: cp}
}

// UniformGen returns a generator drawing each interaction uniformly at
// random over the n(n-1)/2 unordered pairs — the randomized adversary of
// §4.
func UniformGen(n int, src *rng.Source) func(t int) Interaction {
	return func(int) Interaction {
		a, b := src.Pair(n)
		return Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}
	}
}

// Uniform returns a finite uniform-random sequence of the given length.
func Uniform(n, length int, src *rng.Source) (*Sequence, error) {
	if n < 2 {
		return nil, fmt.Errorf("seq: need at least 2 nodes, got %d", n)
	}
	if length < 0 {
		return nil, fmt.Errorf("seq: negative length %d", length)
	}
	steps := make([]Interaction, length)
	for t := range steps {
		a, b := src.Pair(n)
		steps[t] = Interaction{U: graph.NodeID(a), V: graph.NodeID(b)}
	}
	return &Sequence{n: n, steps: steps}, nil
}

// RoundRobinGen returns a generator cycling through the given edges in
// order forever: a recurrent schedule in which every interaction that
// occurs once occurs infinitely often (the hypothesis of Theorem 4).
func RoundRobinGen(edges []graph.Edge) (func(t int) Interaction, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("seq: round-robin needs at least one edge")
	}
	cp := make([]graph.Edge, len(edges))
	copy(cp, edges)
	return func(t int) Interaction {
		e := cp[t%len(cp)]
		return Interaction{U: e.U, V: e.V}
	}, nil
}

// RoundRobin returns rounds full passes over edges as a finite Sequence
// on n nodes.
func RoundRobin(n int, edges []graph.Edge, rounds int) (*Sequence, error) {
	gen, err := RoundRobinGen(edges)
	if err != nil {
		return nil, err
	}
	steps := make([]Interaction, 0, len(edges)*rounds)
	for t := 0; t < len(edges)*rounds; t++ {
		steps = append(steps, gen(t))
	}
	return NewSequence(n, steps)
}

// MeetTimes answers "when does node u next interact with the sink after
// time t" queries over a View, caching scan progress so that repeated
// queries cost amortised O(1) per examined interaction. This implements
// the paper's u.meetTime knowledge (§2.1): the smallest t' > t with
// I_t' = {u, s}; for u = s it is the identity t ↦ t.
//
// Horizon bounds the total look-ahead: queries whose answer lies beyond
// horizon report no meeting. For finite views the natural horizon is the
// sequence length; for streams callers must supply a budget.
type MeetTimes struct {
	view    View
	sink    graph.NodeID
	horizon int
	scanned int     // number of interactions examined so far
	times   [][]int // per node, increasing times of sink meetings
}

// NewMeetTimes builds a meet-time index for view and sink with the given
// look-ahead horizon (capped at the view's bound when finite).
func NewMeetTimes(view View, sink graph.NodeID, horizon int) (*MeetTimes, error) {
	if sink < 0 || int(sink) >= view.N() {
		return nil, fmt.Errorf("seq: sink %d out of range [0,%d)", sink, view.N())
	}
	if horizon < 0 {
		return nil, fmt.Errorf("seq: negative horizon %d", horizon)
	}
	if b, finite := view.Bound(); finite && horizon > b {
		horizon = b
	}
	return &MeetTimes{
		view:    view,
		sink:    sink,
		horizon: horizon,
		times:   make([][]int, view.N()),
	}, nil
}

// Next returns the smallest time t' > t at which u interacts with the
// sink, and whether such a time exists within the horizon. For the sink
// itself it returns (t, true), per the paper's convention.
func (m *MeetTimes) Next(u graph.NodeID, t int) (int, bool) {
	if u == m.sink {
		return t, true
	}
	if u < 0 || int(u) >= m.view.N() {
		return 0, false
	}
	for {
		// Binary search the cached meeting times of u for a value > t.
		ts := m.times[u]
		i := sort.SearchInts(ts, t+1)
		if i < len(ts) {
			return ts[i], true
		}
		if m.scanned >= m.horizon {
			return 0, false
		}
		m.extend()
	}
}

// extend scans one more chunk of the view, indexing sink meetings.
func (m *MeetTimes) extend() {
	const chunk = 1024
	end := m.scanned + chunk
	if end > m.horizon {
		end = m.horizon
	}
	for t := m.scanned; t < end; t++ {
		it := m.view.At(t)
		if w, ok := it.Other(m.sink); ok {
			m.times[w] = append(m.times[w], t)
		}
	}
	m.scanned = end
}

// Scanned returns how many interactions the index has examined; useful
// for instrumentation of look-ahead cost.
func (m *MeetTimes) Scanned() int { return m.scanned }
