package seq

import (
	"testing"
	"testing/quick"

	"doda/internal/graph"
	"doda/internal/rng"
)

func TestNewInteractionCanonical(t *testing.T) {
	i, err := NewInteraction(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if i.U != 1 || i.V != 4 {
		t.Errorf("interaction = %v", i)
	}
	if _, err := NewInteraction(2, 2); err == nil {
		t.Error("want error for self-interaction")
	}
}

func TestInteractionOtherInvolves(t *testing.T) {
	i := MustInteraction(2, 7)
	if !i.Involves(2) || !i.Involves(7) || i.Involves(3) {
		t.Error("Involves wrong")
	}
	if w, ok := i.Other(2); !ok || w != 7 {
		t.Errorf("Other(2) = %d,%v", w, ok)
	}
	if _, ok := i.Other(9); ok {
		t.Error("Other(9) should fail")
	}
	if i.String() != "{2,7}" {
		t.Errorf("String = %q", i.String())
	}
}

func TestNewSequenceValidation(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		steps   []Interaction
		wantErr bool
	}{
		{name: "ok", n: 3, steps: []Interaction{{0, 1}, {1, 2}}},
		{name: "canonicalises", n: 3, steps: []Interaction{{2, 1}}},
		{name: "too few nodes", n: 1, wantErr: true},
		{name: "self pair", n: 3, steps: []Interaction{{1, 1}}, wantErr: true},
		{name: "out of range", n: 3, steps: []Interaction{{0, 3}}, wantErr: true},
		{name: "negative", n: 3, steps: []Interaction{{-1, 2}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := NewSequence(tt.n, tt.steps)
			if tt.wantErr {
				if err == nil {
					t.Fatal("want error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if s.Len() != len(tt.steps) {
				t.Errorf("Len = %d", s.Len())
			}
			for i := 0; i < s.Len(); i++ {
				it := s.At(i)
				if it.U >= it.V {
					t.Errorf("step %d not canonical: %v", i, it)
				}
			}
		})
	}
}

func TestSequenceDoesNotAliasInput(t *testing.T) {
	steps := []Interaction{{0, 1}}
	s, err := NewSequence(2, steps)
	if err != nil {
		t.Fatal(err)
	}
	steps[0] = Interaction{1, 0}
	if s.At(0) != (Interaction{0, 1}) {
		t.Error("sequence aliased caller slice")
	}
}

func TestSlice(t *testing.T) {
	s, _ := NewSequence(4, []Interaction{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.At(0) != (Interaction{1, 2}) || sub.At(1) != (Interaction{2, 3}) {
		t.Errorf("Slice = %v %v", sub.At(0), sub.At(1))
	}
	if s.Slice(-5, 100).Len() != 4 {
		t.Error("clamping failed")
	}
	if s.Slice(3, 1).Len() != 0 {
		t.Error("inverted range should be empty")
	}
}

func TestConcatRepeat(t *testing.T) {
	a, _ := NewSequence(3, []Interaction{{0, 1}})
	b, _ := NewSequence(3, []Interaction{{1, 2}})
	c, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.At(1) != (Interaction{1, 2}) {
		t.Errorf("Concat wrong")
	}
	r := a.Repeat(3)
	if r.Len() != 3 {
		t.Errorf("Repeat len = %d", r.Len())
	}
	if a.Repeat(-1).Len() != 0 {
		t.Error("Repeat(-1) should be empty")
	}
	d, _ := NewSequence(4, []Interaction{{0, 1}})
	if _, err := a.Concat(d); err == nil {
		t.Error("want error for node count mismatch")
	}
}

func TestUnderlyingGraph(t *testing.T) {
	s, _ := NewSequence(4, []Interaction{{0, 1}, {1, 2}, {0, 1}, {2, 3}})
	g := s.UnderlyingGraph()
	if g.M() != 3 {
		t.Errorf("M = %d, want 3 (duplicates collapse)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Error("missing edges")
	}
	if g.HasEdge(0, 3) {
		t.Error("phantom edge")
	}
}

func TestFutureOf(t *testing.T) {
	s, _ := NewSequence(4, []Interaction{{0, 1}, {1, 2}, {2, 3}, {1, 3}})
	f := s.FutureOf(1)
	want := []TimedStep{{T: 0, With: 0}, {T: 1, With: 2}, {T: 3, With: 3}}
	if len(f) != len(want) {
		t.Fatalf("FutureOf(1) = %v", f)
	}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("FutureOf(1) = %v, want %v", f, want)
		}
	}
	if got := s.FutureOf(0); len(got) != 1 {
		t.Errorf("FutureOf(0) = %v", got)
	}
}

func TestStreamLazyMaterialisation(t *testing.T) {
	calls := 0
	st, err := NewStream(3, func(t int) Interaction {
		calls++
		return Interaction{U: 0, V: graph.NodeID(1 + t%2)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaterializedLen() != 0 {
		t.Error("stream materialised eagerly")
	}
	it := st.At(4)
	if calls != 5 {
		t.Errorf("generator called %d times, want 5", calls)
	}
	if it != (Interaction{0, 1}) {
		t.Errorf("At(4) = %v", it)
	}
	// Re-reading must not call the generator again.
	_ = st.At(2)
	if calls != 5 {
		t.Errorf("generator re-invoked: %d calls", calls)
	}
	if _, finite := st.Bound(); finite {
		t.Error("stream should report unbounded")
	}
}

func TestStreamCanonicalisesGeneratorOutput(t *testing.T) {
	st, _ := NewStream(3, func(t int) Interaction { return Interaction{U: 2, V: 0} })
	if got := st.At(0); got != (Interaction{0, 2}) {
		t.Errorf("At(0) = %v, want canonical {0,2}", got)
	}
}

func TestStreamPrefix(t *testing.T) {
	src := rng.New(3)
	st, _ := NewStream(5, UniformGen(5, src))
	p := st.Prefix(10)
	if p.Len() != 10 {
		t.Fatalf("Prefix len = %d", p.Len())
	}
	for i := 0; i < 10; i++ {
		if p.At(i) != st.At(i) {
			t.Fatalf("prefix diverges at %d", i)
		}
	}
	if st.Prefix(0).Len() != 0 || st.Prefix(-1).Len() != 0 {
		t.Error("empty prefixes wrong")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(1, func(int) Interaction { return Interaction{} }); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := NewStream(3, nil); err == nil {
		t.Error("want error for nil generator")
	}
}

func TestUniformProperties(t *testing.T) {
	src := rng.New(7)
	s, err := Uniform(6, 5000, src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	counts := make(map[Interaction]int)
	for i := 0; i < s.Len(); i++ {
		it := s.At(i)
		if it.U >= it.V || it.U < 0 || int(it.V) >= 6 {
			t.Fatalf("invalid interaction %v", it)
		}
		counts[it]++
	}
	if len(counts) != 15 { // C(6,2)
		t.Errorf("saw %d distinct pairs, want 15", len(counts))
	}
	for it, c := range counts {
		if c < 200 || c > 470 { // mean ~333, generous band
			t.Errorf("pair %v count %d is far from uniform", it, c)
		}
	}
}

func TestUniformValidation(t *testing.T) {
	src := rng.New(1)
	if _, err := Uniform(1, 10, src); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := Uniform(3, -1, src); err == nil {
		t.Error("want error for negative length")
	}
}

func TestRoundRobin(t *testing.T) {
	edges := []graph.Edge{graph.MustEdge(0, 1), graph.MustEdge(1, 2)}
	s, err := RoundRobin(3, edges, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	for t2 := 0; t2 < 6; t2++ {
		want := Interaction{U: edges[t2%2].U, V: edges[t2%2].V}
		if s.At(t2) != want {
			t.Fatalf("At(%d) = %v, want %v", t2, s.At(t2), want)
		}
	}
	if _, err := RoundRobin(3, nil, 2); err == nil {
		t.Error("want error for no edges")
	}
}

func TestMeetTimesBasics(t *testing.T) {
	// Sink = 0. Meetings of node 2 with sink at t=1 and t=4.
	s, _ := NewSequence(3, []Interaction{
		{1, 2}, {0, 2}, {1, 2}, {0, 1}, {0, 2},
	})
	mt, err := NewMeetTimes(s, 0, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		u      graph.NodeID
		after  int
		want   int
		wantOK bool
	}{
		{u: 2, after: -1, want: 1, wantOK: true},
		{u: 2, after: 0, want: 1, wantOK: true},
		{u: 2, after: 1, want: 4, wantOK: true},
		{u: 2, after: 4, wantOK: false},
		{u: 1, after: 0, want: 3, wantOK: true},
		{u: 1, after: 3, wantOK: false},
		{u: 0, after: 7, want: 7, wantOK: true}, // sink: identity
	}
	for _, tt := range tests {
		got, ok := mt.Next(tt.u, tt.after)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("Next(%d,%d) = %d,%v want %d,%v", tt.u, tt.after, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestMeetTimesHorizonCap(t *testing.T) {
	// An unbounded stream that never brings node 2 to the sink.
	st, _ := NewStream(3, func(int) Interaction { return Interaction{0, 1} })
	mt, err := NewMeetTimes(st, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mt.Next(2, 0); ok {
		t.Error("meeting reported beyond horizon")
	}
	if mt.Scanned() != 500 {
		t.Errorf("Scanned = %d, want horizon 500", mt.Scanned())
	}
	// Node 1 meets the sink constantly.
	if got, ok := mt.Next(1, 10); !ok || got != 11 {
		t.Errorf("Next(1,10) = %d,%v", got, ok)
	}
}

func TestMeetTimesValidation(t *testing.T) {
	s, _ := NewSequence(3, nil)
	if _, err := NewMeetTimes(s, 5, 10); err == nil {
		t.Error("want error for out-of-range sink")
	}
	if _, err := NewMeetTimes(s, 0, -1); err == nil {
		t.Error("want error for negative horizon")
	}
}

func TestMeetTimesOutOfRangeNode(t *testing.T) {
	s, _ := NewSequence(3, []Interaction{{0, 1}})
	mt, _ := NewMeetTimes(s, 0, s.Len())
	if _, ok := mt.Next(9, 0); ok {
		t.Error("out-of-range node should have no meetings")
	}
}

func TestQuickMeetTimesAgainstLinearScan(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 4 + src.Intn(5)
		s, err := Uniform(n, 300, src)
		if err != nil {
			return false
		}
		mt, err := NewMeetTimes(s, 0, s.Len())
		if err != nil {
			return false
		}
		for trial := 0; trial < 30; trial++ {
			u := graph.NodeID(src.Intn(n))
			after := src.Intn(300) - 5
			got, ok := mt.Next(u, after)
			// Reference: linear scan.
			wantOK := false
			want := 0
			if u == 0 {
				want, wantOK = after, true
			} else {
				for t2 := max(after+1, 0); t2 < s.Len(); t2++ {
					it := s.At(t2)
					if it.Involves(u) && it.Involves(0) {
						want, wantOK = t2, true
						break
					}
				}
			}
			if ok != wantOK || (ok && got != want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickUniformCanonical(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		s, err := Uniform(n, 64, rng.New(seed))
		if err != nil {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			it := s.At(i)
			if !(0 <= it.U && it.U < it.V && int(it.V) < n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
