// Package chaos provides deterministic, seedable fault injection for
// the sweep stack's two failure seams: the filesystem the checkpoint
// journal writes through, and the HTTP transport the fleet protocol
// rides on.
//
// # Determinism
//
// Every fault decision is a pure function of (seed, fault kind,
// operation index): operation k of a given injector consults
// splitmix64-derived uniform draws, so the same seed produces the same
// fault schedule on every run. Concurrent callers may interleave
// differently — which goroutine lands on operation k is scheduling —
// but the schedule itself (which operation indexes fault, and how) is
// fixed by the seed. MaxFaults bounds the total injected faults, so a
// retried or resumed computation always converges once the schedule
// is exhausted.
//
// # Filesystem faults
//
// FS is the write-path seam the sweepd journal publishes segments
// through; Disk is the passthrough implementation. NewFaultFS wraps
// any FS and injects, per the FSOptions rates:
//
//   - short writes that fail with ENOSPC (a full disk mid-segment),
//   - fsync failures (an I/O error at the durability barrier),
//   - rename failures (the publish step itself erroring), and
//   - torn renames: the rename succeeds but the destination loses a
//     deterministic slice of its tail and every subsequent operation
//     fails with ErrCrashed — a power cut on a non-atomic filesystem,
//     the exact scenario the journal's torn-tail repair exists for.
//     Revive clears the crash ("the machine reboots"); the bytes on
//     disk are whatever the crash left.
//
// # Transport faults
//
// Transport is an http.RoundTripper wrapper injecting latency,
// connection resets (the request never reaches the server), synthesized
// 5xx responses, and dropped responses (the request IS delivered, its
// response lost) — the last being the nasty case that exercises
// retry idempotency for real.
//
// All injected errors wrap ErrInjected so tests and harnesses can tell
// scheduled faults from genuine ones.
package chaos
