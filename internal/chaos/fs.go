package chaos

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// FS is the write-path filesystem seam the sweepd journal publishes
// segments and progress records through. Disk is the passthrough
// implementation; NewFaultFS wraps any FS with an injected fault
// schedule. Read-side helpers (ReadFile) exist so wrappers can inspect
// what they damage; the journal's readers stay on plain os.
type FS interface {
	// OpenFile opens a file for writing (the journal passes O_EXCL
	// tmp-creation flags through it).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically publishes a tmp file under its final name.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory so a just-renamed entry is durable.
	// Filesystems that refuse directory fsync outright (EINVAL/ENOTSUP)
	// are tolerated — the rename is still atomic there.
	SyncDir(dir string) error
}

// File is the writable-file surface the journal needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// diskFS is the real filesystem.
type diskFS struct{}

// Disk is the passthrough FS every production path writes through.
var Disk FS = diskFS{}

func (diskFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (diskFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(name string) error             { return os.Remove(name) }
func (diskFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (diskFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// FSOptions configures one FaultFS schedule. Each rate is the per-
// operation probability of that fault kind; MaxFaults bounds the total
// injected faults (0 = unlimited) so retried runs converge.
type FSOptions struct {
	// Seed fixes the fault schedule; the same seed reproduces the same
	// decisions at the same operation indexes on every run.
	Seed uint64
	// WriteFail is the chance a Write persists only half its bytes and
	// fails with an injected ENOSPC.
	WriteFail float64
	// SyncFail is the chance a file Sync (or directory sync) fails with
	// an injected I/O error.
	SyncFail float64
	// RenameFail is the chance a Rename fails outright, leaving the tmp
	// file in place.
	RenameFail float64
	// TornRename is the chance a Rename succeeds but the destination
	// loses 1–128 trailing bytes and the FS latches into ErrCrashed — a
	// power cut on a non-atomic filesystem. Revive reboots.
	TornRename float64
	// MaxFaults stops injecting after this many faults (0 = unlimited).
	MaxFaults int
}

// FaultFS wraps an FS with a deterministic fault schedule.
type FaultFS struct {
	inner FS
	opt   FSOptions
	sched schedule

	mu      sync.Mutex
	crashed bool
}

// NewFaultFS wraps inner (nil = Disk) with the schedule opt describes.
func NewFaultFS(inner FS, opt FSOptions) *FaultFS {
	if inner == nil {
		inner = Disk
	}
	return &FaultFS{inner: inner, opt: opt, sched: schedule{seed: opt.Seed, max: opt.MaxFaults}}
}

// Faults returns how many faults have fired so far.
func (f *FaultFS) Faults() int { return f.sched.count() }

// Crashed reports whether a torn rename latched the simulated power cut.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Revive clears the simulated crash: the "machine" reboots and the
// bytes on disk are whatever the crash left. The schedule continues
// from where it stopped, so the fault budget still bounds the run.
func (f *FaultFS) Revive() {
	f.mu.Lock()
	f.crashed = false
	f.mu.Unlock()
}

// dead reports the latched crash as the error every post-crash
// operation returns.
func (f *FaultFS) dead() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.dead(); err != nil {
		return err
	}
	idx := f.sched.next()
	if f.sched.fire(kindRename, idx, f.opt.RenameFail) {
		return fmt.Errorf("%w: rename %s: %w", ErrInjected, newpath, syscall.EIO)
	}
	if f.sched.fire(kindTorn, idx, f.opt.TornRename) {
		if err := f.inner.Rename(oldpath, newpath); err != nil {
			return err
		}
		f.tear(newpath, idx)
		f.mu.Lock()
		f.crashed = true
		f.mu.Unlock()
		return fmt.Errorf("%w: power cut after renaming %s", ErrCrashed, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

// tear drops a deterministic 1–128 byte slice off newpath's tail,
// simulating the unsynced tail a power cut loses after the rename's
// directory entry made it to disk.
func (f *FaultFS) tear(newpath string, idx uint64) {
	raw, err := f.inner.ReadFile(newpath)
	if err != nil {
		return
	}
	cut := 1 + int(roll(f.opt.Seed, kindTornCut, idx)*127)
	if cut > len(raw) {
		cut = len(raw)
	}
	w, err := f.inner.OpenFile(newpath, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	w.Write(raw[:len(raw)-cut])
	w.Close()
}

func (f *FaultFS) Remove(name string) error {
	if err := f.dead(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.dead(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.dead(); err != nil {
		return err
	}
	if f.sched.fire(kindSync, f.sched.next(), f.opt.SyncFail) {
		return fmt.Errorf("%w: fsync dir %s: %w", ErrInjected, dir, syscall.EIO)
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies the write/sync schedule to one open file.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.dead(); err != nil {
		return 0, err
	}
	if f.fs.sched.fire(kindWrite, f.fs.sched.next(), f.fs.opt.WriteFail) {
		n, _ := f.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("%w: short write to %s: %w", ErrInjected, f.inner.Name(), syscall.ENOSPC)
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.dead(); err != nil {
		return err
	}
	if f.fs.sched.fire(kindSync, f.fs.sched.next(), f.fs.opt.SyncFail) {
		return fmt.Errorf("%w: fsync %s: %w", ErrInjected, f.inner.Name(), syscall.EIO)
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error {
	// Close always reaches the real file: leaking descriptors would make
	// the injected world less recoverable than a real crash.
	return f.inner.Close()
}
