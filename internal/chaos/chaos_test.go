package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// publish writes one file through fsys with the journal's tmp+rename
// idiom and returns every error along the way.
func publish(fsys FS, dir, name string, body []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, name)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// faultTrace runs a fixed operation sequence against a fresh FaultFS
// and records which operations failed and how.
func faultTrace(t *testing.T, dir string, opt FSOptions) []string {
	t.Helper()
	fsys := NewFaultFS(Disk, opt)
	var trace []string
	for i := 0; i < 60; i++ {
		err := publish(fsys, dir, fmt.Sprintf("f-%03d", i), []byte(strings.Repeat("x", 200)))
		switch {
		case err == nil:
			trace = append(trace, "ok")
		case errors.Is(err, ErrCrashed):
			trace = append(trace, "crash")
			fsys.Revive()
		case errors.Is(err, syscall.ENOSPC):
			trace = append(trace, "enospc")
		default:
			trace = append(trace, "err")
		}
	}
	return trace
}

// TestFSScheduleDeterministic is the acceptance contract: the same seed
// reproduces the same fault sequence on every run, and a different
// seed produces a different one.
func TestFSScheduleDeterministic(t *testing.T) {
	opt := FSOptions{Seed: 42, WriteFail: 0.1, SyncFail: 0.1, RenameFail: 0.1, TornRename: 0.05}
	a := faultTrace(t, t.TempDir(), opt)
	b := faultTrace(t, t.TempDir(), opt)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a, b)
	}
	faults := 0
	for _, s := range a {
		if s != "ok" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("schedule injected no faults at these rates")
	}
	opt.Seed = 43
	c := faultTrace(t, t.TempDir(), opt)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestFSMaxFaultsBoundsTheSchedule: after the budget is spent the FS is
// a passthrough, so retried runs converge.
func TestFSMaxFaultsBoundsTheSchedule(t *testing.T) {
	fsys := NewFaultFS(Disk, FSOptions{Seed: 7, WriteFail: 1, MaxFaults: 3})
	dir := t.TempDir()
	failures := 0
	for i := 0; i < 10; i++ {
		if err := publish(fsys, dir, fmt.Sprintf("g-%d", i), []byte("hello world")); err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("want exactly MaxFaults=3 failures, got %d", failures)
	}
	if fsys.Faults() != 3 {
		t.Fatalf("Faults() = %d, want 3", fsys.Faults())
	}
}

// TestTornRenameTearsAndCrashes: the destination exists with a
// truncated tail, every later operation fails until Revive.
func TestTornRenameTearsAndCrashes(t *testing.T) {
	fsys := NewFaultFS(Disk, FSOptions{Seed: 1, TornRename: 1, MaxFaults: 1})
	dir := t.TempDir()
	body := []byte(strings.Repeat("line of journal bytes\n", 20))
	err := publish(fsys, dir, "seg", body)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("FS should be latched crashed")
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "seg"))
	if rerr != nil {
		t.Fatalf("torn rename must still publish the file: %v", rerr)
	}
	if len(got) >= len(body) || len(got) < len(body)-128 {
		t.Fatalf("torn file is %d bytes, want a 1-128 byte cut off %d", len(got), len(body))
	}
	if _, err := fsys.OpenFile(filepath.Join(dir, "other"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: want ErrCrashed, got %v", err)
	}
	fsys.Revive()
	if err := publish(fsys, dir, "after", []byte("back up")); err != nil {
		t.Fatalf("revived FS should pass through (budget spent): %v", err)
	}
}

// TestShortWriteWrapsENOSPC: the injected write error reads as a real
// full disk to errors.Is, and persists only a prefix.
func TestShortWriteWrapsENOSPC(t *testing.T) {
	fsys := NewFaultFS(Disk, FSOptions{Seed: 5, WriteFail: 1, MaxFaults: 1})
	f, err := fsys.OpenFile(filepath.Join(t.TempDir(), "w"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected ENOSPC, got %v", err)
	}
	if n != 5 {
		t.Fatalf("short write persisted %d bytes, want half (5)", n)
	}
}

// transportTrace runs n requests against a live server through a fresh
// Transport and records each outcome.
func transportTrace(t *testing.T, url string, opt TransportOptions, n int) []string {
	t.Helper()
	client := &http.Client{Transport: NewTransport(nil, opt), Timeout: 5 * time.Second}
	var trace []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(url)
		switch {
		case err != nil && strings.Contains(err.Error(), "response lost"):
			trace = append(trace, "drop")
		case err != nil:
			trace = append(trace, "reset")
		case resp.StatusCode == http.StatusServiceUnavailable:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			trace = append(trace, "503")
		default:
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			trace = append(trace, "ok")
		}
	}
	return trace
}

// TestTransportScheduleDeterministic mirrors the FS determinism
// contract for the HTTP seam.
func TestTransportScheduleDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer srv.Close()
	opt := TransportOptions{Seed: 99, Reset: 0.15, Err5xx: 0.15, DropResponse: 0.1}
	a := transportTrace(t, srv.URL, opt, 50)
	b := transportTrace(t, srv.URL, opt, 50)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed, different transport schedules:\n%v\n%v", a, b)
	}
	kinds := map[string]int{}
	for _, s := range a {
		kinds[s]++
	}
	if kinds["reset"]+kinds["503"]+kinds["drop"] == 0 {
		t.Fatal("transport schedule injected nothing at these rates")
	}
	opt.Seed = 100
	c := transportTrace(t, srv.URL, opt, 50)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatal("different seeds produced identical transport schedules")
	}
}

// TestTransportDropDeliversThenFails: a dropped response must have
// reached the server — that is what distinguishes it from a reset.
func TestTransportDropDeliversThenFails(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprintln(w, "ok")
	}))
	defer srv.Close()
	client := &http.Client{
		Transport: NewTransport(nil, TransportOptions{Seed: 3, DropResponse: 1, MaxFaults: 1}),
	}
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "response lost") {
		t.Fatalf("want a response-lost error, got %v", err)
	}
	if hits != 1 {
		t.Fatalf("dropped request must still reach the server: hits=%d", hits)
	}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("after MaxFaults the transport should pass through: %v", err)
	}
	resp.Body.Close()
	if hits != 2 {
		t.Fatalf("passthrough request lost: hits=%d", hits)
	}
}

// TestTransportLatencyDelays: with Latency=1 every request waits, and
// the injected delay respects context cancellation.
func TestTransportLatencyDelays(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	defer srv.Close()
	tr := NewTransport(nil, TransportOptions{Seed: 8, Latency: 1, MaxLatency: 20 * time.Millisecond})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.Faults() != 0 {
		t.Fatalf("latency must not charge the fault budget, got %d", tr.Faults())
	}
}

// TestTransportPropertySeedAndBudget is the property-test form of the
// transport contract, swept across many seeds and rates rather than one
// hand-picked schedule:
//
//  1. the fault schedule is a pure function of the seed — two transports
//     built from the same options produce byte-identical outcome traces;
//  2. MaxFaults is a hard budget — across a whole run the transport
//     never injects more than MaxFaults failures, so a caller that
//     retries each request up to MaxFaults+1 times ALWAYS gets through.
//
// Property 2 is what makes the injector usable in liveness tests: a
// retry loop under chaos terminates by construction instead of by luck.
func TestTransportPropertySeedAndBudget(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	defer srv.Close()

	const seeds = 25
	for seed := uint64(1); seed <= seeds; seed++ {
		// Vary the mix with the seed so the sweep covers lopsided
		// schedules (all resets, all drops, ...) as well as blends.
		opt := TransportOptions{
			Seed:         seed,
			Reset:        float64(seed%4) * 0.1,
			Err5xx:       float64((seed/4)%4) * 0.1,
			DropResponse: float64((seed/16)%4) * 0.1,
		}

		a := transportTrace(t, srv.URL, opt, 40)
		b := transportTrace(t, srv.URL, opt, 40)
		if strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("seed %d: same options, different schedules:\n%v\n%v", seed, a, b)
		}

		// Budget property: with MaxFaults=3, every request succeeds
		// within 4 attempts, and once the budget is spent nothing fails
		// again.
		const budget = 3
		opt.MaxFaults = budget
		tr := NewTransport(nil, opt)
		client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
		for call := 0; call < 20; call++ {
			exhausted := tr.Faults() >= budget
			ok := false
			for attempt := 0; attempt <= budget; attempt++ {
				resp, err := client.Get(srv.URL)
				if err != nil {
					if exhausted {
						t.Fatalf("seed %d call %d: fault after budget exhausted: %v", seed, call, err)
					}
					continue
				}
				code := resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if code == http.StatusServiceUnavailable {
					if exhausted {
						t.Fatalf("seed %d call %d: injected 503 after budget exhausted", seed, call)
					}
					continue
				}
				ok = true
				break
			}
			if !ok {
				t.Fatalf("seed %d call %d: no success in %d attempts (faults=%d, budget=%d)",
					seed, call, budget+1, tr.Faults(), budget)
			}
		}
		if tr.Faults() > budget {
			t.Fatalf("seed %d: injected %d faults, budget %d", seed, tr.Faults(), budget)
		}
	}
}
