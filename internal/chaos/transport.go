package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// TransportOptions configures one Transport schedule. Each rate is the
// per-request probability of that fault; MaxFaults bounds the total
// injected failures (latency is delay, not failure, and is not charged
// against the budget).
type TransportOptions struct {
	// Seed fixes the fault schedule.
	Seed uint64
	// Latency is the chance a request is delayed by a deterministic
	// fraction of MaxLatency before being forwarded.
	Latency float64
	// MaxLatency caps an injected delay (default 50ms).
	MaxLatency time.Duration
	// Reset is the chance the request fails before reaching the server —
	// a connection reset on dial or send.
	Reset float64
	// Err5xx is the chance the request is answered with a synthesized
	// 503 without reaching the server.
	Err5xx float64
	// DropResponse is the chance the request IS delivered to the server
	// but its response is discarded and an error returned — the case
	// that makes non-idempotent retries dangerous.
	DropResponse float64
	// MaxFaults stops injecting failures after this many (0 = unlimited).
	MaxFaults int
}

// Transport is an http.RoundTripper injecting the TransportOptions
// schedule in front of a base transport.
type Transport struct {
	base  http.RoundTripper
	opt   TransportOptions
	sched schedule
}

// NewTransport wraps base (nil = http.DefaultTransport) with the
// schedule opt describes.
func NewTransport(base http.RoundTripper, opt TransportOptions) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if opt.MaxLatency <= 0 {
		opt.MaxLatency = 50 * time.Millisecond
	}
	return &Transport{base: base, opt: opt, sched: schedule{seed: opt.Seed, max: opt.MaxFaults}}
}

// Faults returns how many failures have fired so far (latency excluded).
func (t *Transport) Faults() int { return t.sched.count() }

// RoundTrip applies the schedule to one request. Injected failures
// close the request body, per the RoundTripper contract.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	idx := t.sched.next()
	if t.opt.Latency > 0 && roll(t.opt.Seed, kindLatency, idx) < t.opt.Latency {
		delay := time.Duration(roll(t.opt.Seed, kindLatencyScale, idx) * float64(t.opt.MaxLatency))
		select {
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	if t.sched.fire(kindReset, idx, t.opt.Reset) {
		closeBody(req)
		return nil, fmt.Errorf("%w: %s %s: %w", ErrInjected, req.Method, req.URL, syscall.ECONNRESET)
	}
	if t.sched.fire(kind5xx, idx, t.opt.Err5xx) {
		closeBody(req)
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request: req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.sched.fire(kindDrop, idx, t.opt.DropResponse) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("%w: %s %s: response lost: %w", ErrInjected, req.Method, req.URL, syscall.ECONNRESET)
	}
	return resp, nil
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}
