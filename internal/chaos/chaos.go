package chaos

import (
	"errors"
	"sync"
)

// Sentinel errors callers branch on. Every injected failure wraps
// ErrInjected; a torn rename additionally latches the injector into
// ErrCrashed until Revive.
var (
	// ErrInjected marks an error as a scheduled fault rather than a
	// genuine one.
	ErrInjected = errors.New("chaos: injected fault")
	// ErrCrashed is returned by every filesystem operation after a torn
	// rename simulated a power cut; Revive clears it.
	ErrCrashed = errors.New("chaos: simulated machine crash (call Revive to reboot)")
)

// Fault kinds, used as the decision stream discriminator so one
// operation can consult several independent draws.
const (
	kindWrite uint64 = iota + 1
	kindSync
	kindRename
	kindTorn
	kindTornCut
	kindLatency
	kindLatencyScale
	kindReset
	kind5xx
	kindDrop
)

// mix64 is the splitmix64 finalizer — the same avalanche the repo's rng
// package seeds through, so nearby seeds give unrelated schedules.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// roll returns a deterministic uniform draw in [0,1) for (seed, kind,
// operation index) — the whole fault schedule is a pure function of
// these three.
func roll(seed, kind, idx uint64) float64 {
	h := mix64(mix64(seed^kind*0x9e3779b97f4a7c15) + idx)
	return float64(h>>11) / (1 << 53)
}

// schedule is the shared decision core of both injectors: an operation
// counter, a fault budget, and the seed the draws derive from.
type schedule struct {
	mu     sync.Mutex
	seed   uint64
	max    int // 0 = unlimited
	ops    uint64
	faults int
}

// next claims the next operation index.
func (s *schedule) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.ops
	s.ops++
	return idx
}

// fire reports whether fault kind should strike at operation idx, and
// charges the budget when it does.
func (s *schedule) fire(kind, idx uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.max > 0 && s.faults >= s.max {
		return false
	}
	if roll(s.seed, kind, idx) >= p {
		return false
	}
	s.faults++
	return true
}

// count returns how many faults fired so far.
func (s *schedule) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}
