// Package bitset implements a dense fixed-capacity bit set used to track
// data provenance (which nodes' original data have been folded into an
// aggregate) and knowledge dissemination (which nodes' futures a node has
// learned) without per-element allocations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set. The zero value has capacity zero; use
// New to size it.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity (the n passed to New).
func (s *Set) Cap() int { return s.n }

// Words exposes the packed backing words (bit i of the set lives at
// words[i/64] bit i%64). The slice aliases the set's storage: callers may
// read or mutate it for word-parallel operations, but must not grow it.
// Bits at positions >= Cap() must stay zero.
func (s *Set) Words() []uint64 { return s.words }

// SetAll sets every bit 0..n-1, leaving the tail bits of the last word
// zero so Count and Equal stay exact.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := uint(s.n % 64); tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << tail) - 1
	}
}

// Add sets bit i. Out-of-range indexes are ignored (they cannot be
// represented, and callers validate node ids upstream).
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether all n bits are set.
func (s *Set) Full() bool { return s.Count() == s.n }

// UnionWith sets s to s ∪ t. Capacities must match; mismatches panic
// because they indicate a programming error (mixing sets from different
// node universes).
func (s *Set) UnionWith(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectsWith reports whether s ∩ t is non-empty.
func (s *Set) IntersectsWith(t *Set) bool {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Clear removes every bit, keeping the capacity and backing storage, so
// a set can be recycled across runs without reallocating.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Members returns the set bits in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// FromWords wraps an existing word slice as a Set with capacity n,
// without copying: the Set aliases words, so mutations through either
// view are visible in both. This is the arena primitive — a contiguous
// block carved into many sets — used by core's per-instance arenas. The
// slice length must be exactly WordsFor(n); mismatches panic because
// they indicate a mis-carved arena.
func FromWords(n int, words []uint64) *Set {
	if n < 0 {
		n = 0
	}
	if len(words) != WordsFor(n) {
		panic(fmt.Sprintf("bitset: FromWords(%d) needs %d words, got %d", n, WordsFor(n), len(words)))
	}
	return &Set{n: n, words: words}
}

// WordsFor returns the number of 64-bit words needed to hold n bits.
func WordsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + 63) / 64
}

// TestWord reports whether bit i is set in a raw word slice laid out like
// Set's backing storage. No bounds checks beyond the slice's own: callers
// own validation.
func TestWord(words []uint64, i int) bool {
	return words[i>>6]&(1<<(uint(i)&63)) != 0
}

// SetWordBit sets bit i in a raw word slice.
func SetWordBit(words []uint64, i int) {
	words[i>>6] |= 1 << (uint(i) & 63)
}

// ClearWordBit clears bit i in a raw word slice.
func ClearWordBit(words []uint64, i int) {
	words[i>>6] &^= 1 << (uint(i) & 63)
}

// CountWords returns the number of set bits across a raw word slice.
func CountWords(words []uint64) int {
	c := 0
	for _, w := range words {
		c += bits.OnesCount64(w)
	}
	return c
}

// SelectWord returns the position of the k-th set bit (0-indexed) in a
// raw word slice, or -1 when fewer than k+1 bits are set. This is the
// rank-select primitive adaptive adversaries use to pick the k-th owner
// without materializing a member list.
func SelectWord(words []uint64, k int) int {
	if k < 0 {
		return -1
	}
	for wi, w := range words {
		n := bits.OnesCount64(w)
		if k >= n {
			k -= n
			continue
		}
		// Select the k-th set bit inside w by peeling low bits.
		for ; k > 0; k-- {
			w &= w - 1
		}
		return wi<<6 + bits.TrailingZeros64(w)
	}
	return -1
}

// String renders the set as {a,b,c}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, m := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", m)
	}
	b.WriteByte('}')
	return b.String()
}
