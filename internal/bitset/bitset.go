// Package bitset implements a dense fixed-capacity bit set used to track
// data provenance (which nodes' original data have been folded into an
// aggregate) and knowledge dissemination (which nodes' futures a node has
// learned) without per-element allocations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is a fixed-capacity bit set. The zero value has capacity zero; use
// New to size it.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for bits 0..n-1.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the capacity (the n passed to New).
func (s *Set) Cap() int { return s.n }

// Add sets bit i. Out-of-range indexes are ignored (they cannot be
// represented, and callers validate node ids upstream).
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Full reports whether all n bits are set.
func (s *Set) Full() bool { return s.Count() == s.n }

// UnionWith sets s to s ∪ t. Capacities must match; mismatches panic
// because they indicate a programming error (mixing sets from different
// node universes).
func (s *Set) UnionWith(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectsWith reports whether s ∩ t is non-empty.
func (s *Set) IntersectsWith(t *Set) bool {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Clear removes every bit, keeping the capacity and backing storage, so
// a set can be recycled across runs without reallocating.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// Members returns the set bits in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	for i := 0; i < s.n; i++ {
		if s.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the set as {a,b,c}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, m := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", m)
	}
	b.WriteByte('}')
	return b.String()
}
