package bitset

import (
	"testing"
	"testing/quick"

	"doda/internal/rng"
)

func TestAddHasRemove(t *testing.T) {
	s := New(100)
	if s.Has(5) {
		t.Error("fresh set has bit")
	}
	s.Add(5)
	s.Add(64)
	s.Add(99)
	if !s.Has(5) || !s.Has(64) || !s.Has(99) {
		t.Error("missing added bits")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if s.Count() != 0 {
		t.Errorf("out-of-range Add mutated set: %v", s)
	}
	if s.Has(-1) || s.Has(10) {
		t.Error("out-of-range Has returned true")
	}
	s.Remove(99) // must not panic
}

func TestFull(t *testing.T) {
	s := New(70)
	for i := 0; i < 70; i++ {
		if s.Full() {
			t.Fatalf("Full true at %d bits", i)
		}
		s.Add(i)
	}
	if !s.Full() {
		t.Error("Full false with all bits set")
	}
}

func TestFullEmptyCapacity(t *testing.T) {
	if !New(0).Full() {
		t.Error("zero-capacity set should be trivially full")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(10), New(10)
	a.Add(1)
	b.Add(2)
	b.Add(1)
	a.UnionWith(b)
	if !a.Has(1) || !a.Has(2) || a.Count() != 2 {
		t.Errorf("union = %v", a)
	}
	if b.Count() != 2 {
		t.Error("union mutated operand")
	}
}

func TestUnionWithMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(5).UnionWith(New(6))
}

func TestIntersectsWith(t *testing.T) {
	a, b := New(130), New(130)
	a.Add(128)
	b.Add(127)
	if a.IntersectsWith(b) {
		t.Error("disjoint sets intersect")
	}
	b.Add(128)
	if !a.IntersectsWith(b) {
		t.Error("intersection missed")
	}
}

func TestEqualClone(t *testing.T) {
	a := New(66)
	a.Add(0)
	a.Add(65)
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c.Add(3)
	if a.Equal(c) {
		t.Error("clone shares storage")
	}
	if a.Equal(New(67)) {
		t.Error("different capacities equal")
	}
}

func TestMembersString(t *testing.T) {
	s := New(10)
	s.Add(7)
	s.Add(2)
	m := s.Members()
	if len(m) != 2 || m[0] != 2 || m[1] != 7 {
		t.Errorf("Members = %v", m)
	}
	if got := s.String(); got != "{2,7}" {
		t.Errorf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNegativeCapacity(t *testing.T) {
	s := New(-5)
	if s.Cap() != 0 {
		t.Errorf("Cap = %d", s.Cap())
	}
}

func TestQuickCountMatchesMembers(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(200) + 1
		s := New(n)
		for i := 0; i < 50; i++ {
			s.Add(src.Intn(n))
		}
		return s.Count() == len(s.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionSuperset(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(150) + 1
		a, b := New(n), New(n)
		for i := 0; i < 30; i++ {
			a.Add(src.Intn(n))
			b.Add(src.Intn(n))
		}
		before := a.Clone()
		a.UnionWith(b)
		for _, m := range before.Members() {
			if !a.Has(m) {
				return false
			}
		}
		for _, m := range b.Members() {
			if !a.Has(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
