package bitset

import (
	"testing"
	"testing/quick"

	"doda/internal/rng"
)

func TestAddHasRemove(t *testing.T) {
	s := New(100)
	if s.Has(5) {
		t.Error("fresh set has bit")
	}
	s.Add(5)
	s.Add(64)
	s.Add(99)
	if !s.Has(5) || !s.Has(64) || !s.Has(99) {
		t.Error("missing added bits")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if s.Count() != 0 {
		t.Errorf("out-of-range Add mutated set: %v", s)
	}
	if s.Has(-1) || s.Has(10) {
		t.Error("out-of-range Has returned true")
	}
	s.Remove(99) // must not panic
}

func TestFull(t *testing.T) {
	s := New(70)
	for i := 0; i < 70; i++ {
		if s.Full() {
			t.Fatalf("Full true at %d bits", i)
		}
		s.Add(i)
	}
	if !s.Full() {
		t.Error("Full false with all bits set")
	}
}

func TestFullEmptyCapacity(t *testing.T) {
	if !New(0).Full() {
		t.Error("zero-capacity set should be trivially full")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(10), New(10)
	a.Add(1)
	b.Add(2)
	b.Add(1)
	a.UnionWith(b)
	if !a.Has(1) || !a.Has(2) || a.Count() != 2 {
		t.Errorf("union = %v", a)
	}
	if b.Count() != 2 {
		t.Error("union mutated operand")
	}
}

func TestUnionWithMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	New(5).UnionWith(New(6))
}

func TestIntersectsWith(t *testing.T) {
	a, b := New(130), New(130)
	a.Add(128)
	b.Add(127)
	if a.IntersectsWith(b) {
		t.Error("disjoint sets intersect")
	}
	b.Add(128)
	if !a.IntersectsWith(b) {
		t.Error("intersection missed")
	}
}

func TestEqualClone(t *testing.T) {
	a := New(66)
	a.Add(0)
	a.Add(65)
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c.Add(3)
	if a.Equal(c) {
		t.Error("clone shares storage")
	}
	if a.Equal(New(67)) {
		t.Error("different capacities equal")
	}
}

func TestMembersString(t *testing.T) {
	s := New(10)
	s.Add(7)
	s.Add(2)
	m := s.Members()
	if len(m) != 2 || m[0] != 2 || m[1] != 7 {
		t.Errorf("Members = %v", m)
	}
	if got := s.String(); got != "{2,7}" {
		t.Errorf("String = %q", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func TestNegativeCapacity(t *testing.T) {
	s := New(-5)
	if s.Cap() != 0 {
		t.Errorf("Cap = %d", s.Cap())
	}
}

func TestSetAll(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		s := New(n)
		s.SetAll()
		if s.Count() != n {
			t.Errorf("n=%d: SetAll Count = %d", n, s.Count())
		}
		if !s.Full() {
			t.Errorf("n=%d: SetAll not Full", n)
		}
		if s.Has(n) {
			t.Errorf("n=%d: tail bit set", n)
		}
	}
}

func TestWordsAlias(t *testing.T) {
	s := New(70)
	w := s.Words()
	if len(w) != 2 {
		t.Fatalf("len(Words) = %d", len(w))
	}
	SetWordBit(w, 69)
	if !s.Has(69) {
		t.Error("SetWordBit not visible through Set")
	}
	s.Add(3)
	if !TestWord(w, 3) {
		t.Error("Set.Add not visible through Words")
	}
	ClearWordBit(w, 69)
	if s.Has(69) {
		t.Error("ClearWordBit not visible through Set")
	}
}

func TestWordsFor(t *testing.T) {
	cases := map[int]int{-3: 0, 0: 0, 1: 1, 64: 1, 65: 2, 128: 2, 129: 3}
	for n, want := range cases {
		if got := WordsFor(n); got != want {
			t.Errorf("WordsFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestSelectWord(t *testing.T) {
	s := New(200)
	members := []int{0, 1, 63, 64, 100, 127, 128, 199}
	for _, m := range members {
		s.Add(m)
	}
	w := s.Words()
	for k, want := range members {
		if got := SelectWord(w, k); got != want {
			t.Errorf("SelectWord(k=%d) = %d, want %d", k, got, want)
		}
	}
	if got := SelectWord(w, len(members)); got != -1 {
		t.Errorf("SelectWord past end = %d, want -1", got)
	}
	if got := SelectWord(w, -1); got != -1 {
		t.Errorf("SelectWord(-1) = %d, want -1", got)
	}
	if got := SelectWord(nil, 0); got != -1 {
		t.Errorf("SelectWord(nil) = %d, want -1", got)
	}
}

func TestQuickSelectMatchesMembers(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(300) + 1
		s := New(n)
		for i := 0; i < 60; i++ {
			s.Add(src.Intn(n))
		}
		w := s.Words()
		if CountWords(w) != s.Count() {
			return false
		}
		for k, m := range s.Members() {
			if SelectWord(w, k) != m {
				return false
			}
		}
		return SelectWord(w, s.Count()) == -1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCountMatchesMembers(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(200) + 1
		s := New(n)
		for i := 0; i < 50; i++ {
			s.Add(src.Intn(n))
		}
		return s.Count() == len(s.Members())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionSuperset(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := src.Intn(150) + 1
		a, b := New(n), New(n)
		for i := 0; i < 30; i++ {
			a.Add(src.Intn(n))
			b.Add(src.Intn(n))
		}
		before := a.Clone()
		a.UnionWith(b)
		for _, m := range before.Members() {
			if !a.Has(m) {
				return false
			}
		}
		for _, m := range b.Members() {
			if !a.Has(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
