// Package stats provides the descriptive and inferential statistics the
// experiment harness and the analysis layer need to compare measured
// interaction counts against the paper's closed forms and asymptotic
// exponents.
//
// # Layers
//
// Descriptive: Mean/Variance/Quantile/Summarize over float samples, and
// the streaming Welford accumulator whose Merge implements Chan et
// al.'s parallel variance update — the primitive behind worker-local
// accumulation in sweeps. WelfordState is the exact JSON snapshot
// (shortest round-trippable float encoding) that lets checkpoints
// journal an accumulator and restore it bit-for-bit, which is what
// makes resumed and merged fleet totals byte-identical to an
// uninterrupted run's.
//
// Closed forms: Harmonic computes H(n) (exact summation below 1024, the
// asymptotic expansion above, error far below experiment noise) — the
// paper's Waiting and offline-optimum expectations are stated with
// H(n−1).
//
// Regression: LinearFit/LogLogFit estimate empirical growth exponents;
// FitScaledForm fits y = c·g(n) for a fixed candidate form in log
// space; FitPowerLaw adds the log-space RSS the information criteria
// need; AIC/BIC score candidates (floored at a vanishing RSS so a
// perfect fit stays finite); KendallTau and StrictlyMonotone back the
// monotone-trend tests. internal/analysis composes these into
// scaling-law extraction with bootstrap confidence intervals.
//
// Everything here is deterministic pure-float computation — no
// randomness, no ambient state — so any statistic is reproducible from
// its inputs alone.
package stats
