package stats

import (
	"math"
	"testing"
)

func TestFitScaledFormRecoversConstant(t *testing.T) {
	g := func(x float64) float64 { return x * x }
	x := []float64{8, 16, 32, 64, 128}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3.5 * v * v
	}
	f, err := FitScaledForm(x, y, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.C()-3.5) > 1e-12 {
		t.Errorf("c = %v, want 3.5", f.C())
	}
	if f.RSS > 1e-20 {
		t.Errorf("RSS = %v on exact data, want ~0", f.RSS)
	}
	if f.R2 < 0.999999 {
		t.Errorf("R2 = %v on exact data", f.R2)
	}
}

func TestFitScaledFormRejectsBadData(t *testing.T) {
	g := func(x float64) float64 { return x }
	if _, err := FitScaledForm([]float64{1, 2}, []float64{1, -2}, g); err == nil {
		t.Error("negative y accepted")
	}
	if _, err := FitScaledForm([]float64{1}, []float64{1}, g); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitScaledForm([]float64{1, 2}, []float64{1, 2}, func(float64) float64 { return 0 }); err == nil {
		t.Error("non-positive form accepted")
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	x := []float64{4, 8, 16, 32, 64}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 0.25 * math.Pow(v, 1.5)
	}
	f, err := FitPowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Exponent-1.5) > 1e-10 {
		t.Errorf("exponent = %v, want 1.5", f.Exponent)
	}
	if math.Abs(f.C()-0.25) > 1e-10 {
		t.Errorf("c = %v, want 0.25", f.C())
	}
	if f.RSS > 1e-18 {
		t.Errorf("RSS = %v on exact data", f.RSS)
	}
}

// The information criteria must rank the true generating form ahead of
// a wrong fixed form, and must charge the free fit for its extra
// parameter when the fixed form explains the data equally well.
func TestAICPrefersTrueForm(t *testing.T) {
	x := []float64{8, 16, 32, 64, 128, 256}
	y := make([]float64, len(x))
	for i, v := range x {
		// y = 2·x² with mild deterministic multiplicative wobble.
		wobble := 1 + 0.01*math.Sin(float64(i))
		y[i] = 2 * v * v * wobble
	}
	sq, err := FitScaledForm(x, y, func(v float64) float64 { return v * v })
	if err != nil {
		t.Fatal(err)
	}
	lin, err := FitScaledForm(x, y, func(v float64) float64 { return v })
	if err != nil {
		t.Fatal(err)
	}
	if AIC(sq.RSS, sq.N, 1) >= AIC(lin.RSS, lin.N, 1) {
		t.Errorf("AIC ranks x (%v) at or above x² (%v) on quadratic data",
			AIC(lin.RSS, lin.N, 1), AIC(sq.RSS, sq.N, 1))
	}
	if BIC(sq.RSS, sq.N, 1) >= BIC(lin.RSS, lin.N, 1) {
		t.Errorf("BIC ranks x at or above x² on quadratic data")
	}
}

func TestAICFiniteOnPerfectFit(t *testing.T) {
	if v := AIC(0, 5, 2); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("AIC(0, 5, 2) = %v, want finite", v)
	}
	if v := BIC(0, 5, 2); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Errorf("BIC(0, 5, 2) = %v, want finite", v)
	}
}

func TestKendallTau(t *testing.T) {
	up := []float64{1, 2, 3, 4}
	down := []float64{9, 7, 5, 2}
	if tau, err := KendallTau(up, []float64{10, 20, 30, 40}); err != nil || tau != 1 {
		t.Errorf("tau = %v, %v; want 1 on concordant data", tau, err)
	}
	if tau, err := KendallTau(up, down); err != nil || tau != -1 {
		t.Errorf("tau = %v, %v; want -1 on discordant data", tau, err)
	}
	if tau, err := KendallTau(up, []float64{1, 3, 2, 4}); err != nil || tau <= 0 || tau >= 1 {
		t.Errorf("tau = %v, %v; want in (0,1) on one swap", tau, err)
	}
	if _, err := KendallTau(up, []float64{5, 5, 5, 5}); err == nil {
		t.Error("constant y must make tau undefined")
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
}

func TestStrictlyMonotone(t *testing.T) {
	cases := []struct {
		ys   []float64
		want int
	}{
		{[]float64{1, 2, 3}, 1},
		{[]float64{3, 2, 1}, -1},
		{[]float64{1, 2, 2}, 0},
		{[]float64{1, 3, 2}, 0},
		{[]float64{1}, 0},
	}
	for _, c := range cases {
		if got := StrictlyMonotone(c.ys); got != c.want {
			t.Errorf("StrictlyMonotone(%v) = %d, want %d", c.ys, got, c.want)
		}
	}
}
