package stats

// Regression primitives for scaling-law extraction: fitting a sample of
// (n, cost) points against the paper's candidate growth forms, scoring
// the candidates with information criteria, and testing monotone trends.
// internal/analysis composes these into per-(scenario, algorithm) model
// selection with bootstrap confidence intervals.

import (
	"errors"
	"fmt"
	"math"
)

// rssFloor keeps the information criteria finite when a candidate fits
// the sample exactly (synthetic data, or as many parameters as points):
// ln(0) would otherwise send AIC to -Inf, which JSON cannot carry and
// which would make every comparison against the perfect fit meaningless
// rather than merely decisive.
const rssFloor = 1e-18

// FormFit is a least-squares fit of y = c·g(x), computed in log space
// (log y = log c + log g(x) + ε): the natural space for scaling laws,
// where multiplicative noise becomes additive and every decade of n
// counts equally.
type FormFit struct {
	// LogC is the fitted log-scale constant; C() exponentiates it.
	LogC float64
	// RSS is the residual sum of squares in log space.
	RSS float64
	// R2 is the coefficient of determination in log space.
	R2 float64
	// N is the number of points fitted.
	N int
}

// C returns the fitted scale constant c = exp(LogC).
func (f FormFit) C() float64 { return math.Exp(f.LogC) }

// FitScaledForm fits y = c·g(x) by least squares on log y − log g(x):
// the maximum-likelihood estimate of log c is the mean log-ratio, and
// the residuals around it are what AIC/BIC score. Points must be
// positive and g must be positive at every x.
func FitScaledForm(x, y []float64, g func(float64) float64) (FormFit, error) {
	if len(x) != len(y) {
		return FormFit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return FormFit{}, ErrNoData
	}
	resid := make([]float64, len(x))
	sum := 0.0
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return FormFit{}, fmt.Errorf("stats: scaled-form fit needs positive data, got (%v,%v)", x[i], y[i])
		}
		gv := g(x[i])
		if gv <= 0 || math.IsInf(gv, 0) || math.IsNaN(gv) {
			return FormFit{}, fmt.Errorf("stats: form is not positive and finite at x=%v (g=%v)", x[i], gv)
		}
		resid[i] = math.Log(y[i]) - math.Log(gv)
		sum += resid[i]
	}
	f := FormFit{LogC: sum / float64(len(x)), N: len(x)}
	// RSS and R² around the fitted constant; the total sum of squares is
	// taken around the mean of log y, mirroring LinearFit.
	meanLy := 0.0
	lys := make([]float64, len(y))
	for i := range y {
		lys[i] = math.Log(y[i])
		meanLy += lys[i]
	}
	meanLy /= float64(len(y))
	var ssTot float64
	for i := range resid {
		d := resid[i] - f.LogC
		f.RSS += d * d
		dt := lys[i] - meanLy
		ssTot += dt * dt
	}
	f.R2 = 1
	if ssTot > 0 {
		f.R2 = 1 - f.RSS/ssTot
	}
	return f, nil
}

// PowerFit is a free power-law fit y = c·x^a (log-log least squares),
// with the log-space residual sum of squares the information criteria
// need — the extra piece Fit/LogLogFit does not carry.
type PowerFit struct {
	// Exponent is the fitted power a.
	Exponent float64
	// LogC is the fitted log-scale constant.
	LogC float64
	// RSS is the residual sum of squares in log space.
	RSS float64
	// R2 is the coefficient of determination in log space.
	R2 float64
	// N is the number of points fitted.
	N int
}

// C returns the fitted scale constant c = exp(LogC).
func (f PowerFit) C() float64 { return math.Exp(f.LogC) }

// FitPowerLaw fits y = c·x^a by ordinary least squares on (log x, log y)
// and returns the exponent, scale and log-space residuals. It needs at
// least two points with distinct positive x and positive y.
func FitPowerLaw(x, y []float64) (PowerFit, error) {
	fit, err := LogLogFit(x, y)
	if err != nil {
		return PowerFit{}, err
	}
	p := PowerFit{Exponent: fit.Slope, LogC: fit.Intercept, R2: fit.R2, N: len(x)}
	for i := range x {
		r := math.Log(y[i]) - (fit.Intercept + fit.Slope*math.Log(x[i]))
		p.RSS += r * r
	}
	return p, nil
}

// AIC is the Akaike information criterion of a least-squares fit with k
// free parameters over m points, under the usual Gaussian-residual
// reduction AIC = m·ln(RSS/m) + 2k. Only differences between candidates
// fitted to the same points are meaningful. A vanishing RSS is floored
// so a perfect fit scores decisively but finitely.
func AIC(rss float64, m, k int) float64 {
	return icPenalty(rss, m) + 2*float64(k)
}

// BIC is the Bayesian information criterion m·ln(RSS/m) + k·ln(m): the
// same goodness-of-fit term as AIC with a harsher parameter penalty, so
// it is the more conservative of the two when they disagree about the
// free-exponent model.
func BIC(rss float64, m, k int) float64 {
	return icPenalty(rss, m) + float64(k)*math.Log(float64(m))
}

func icPenalty(rss float64, m int) float64 {
	if rss < rssFloor {
		rss = rssFloor
	}
	return float64(m) * math.Log(rss/float64(m))
}

// KendallTau returns Kendall's rank correlation τ between x and y: +1
// for a strictly concordant (monotone increasing) relation, −1 for a
// strictly discordant one, with tied pairs handled by the τ-b
// correction. It is the trend statistic the analysis layer uses for the
// community-mixing monotonicity claim, chosen over a fitted slope
// because the claim is ordinal — "scarcer contacts, slower aggregation"
// — not linear.
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, ErrNoData
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			dx := x[j] - x[i]
			dy := y[j] - y[i]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(len(x)*(len(x)-1)) / 2
	den := math.Sqrt((n0 - tiesX) * (n0 - tiesY))
	if den == 0 {
		return 0, errors.New("stats: kendall tau undefined (a variable is constant)")
	}
	return (concordant - discordant) / den, nil
}

// StrictlyMonotone reports whether ys is strictly increasing (+1),
// strictly decreasing (−1), or neither (0).
func StrictlyMonotone(ys []float64) int {
	if len(ys) < 2 {
		return 0
	}
	inc, dec := true, true
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			inc = false
		}
		if ys[i] >= ys[i-1] {
			dec = false
		}
	}
	switch {
	case inc:
		return 1
	case dec:
		return -1
	default:
		return 0
	}
}
