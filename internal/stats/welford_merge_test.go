package stats

// Property tests for Welford.Merge as the sweep fleet uses it: per-cell
// accumulators journaled to checkpoints, then folded back into fleet
// totals in cell-index order. The byte-identity the sweep service
// guarantees rests on two facts pinned here — the fold is exact under any
// shard grouping (grouping never enters the fold), and the State/JSON
// round trip is bit-for-bit lossless — plus the analytic facts that Merge
// commutes and associates exactly on counts and extrema and up to
// floating-point rounding on the moments.

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randWelford builds an accumulator over 0–12 observations drawn from a
// few scales (durations in a sweep are small positive integers, but the
// property should not depend on that).
func randWelford(rng *rand.Rand) Welford {
	var w Welford
	n := rng.Intn(13)
	scale := math.Pow(10, float64(rng.Intn(7)-3))
	for i := 0; i < n; i++ {
		w.Add((rng.Float64()*2 - 1) * scale)
	}
	return w
}

// foldInOrder merges per-cell accumulators in index order — exactly what
// sweep.TotalsOf does.
func foldInOrder(cells []Welford) Welford {
	var w Welford
	for i := range cells {
		w.Merge(&cells[i])
	}
	return w
}

// TestWelfordMergeShardGroupingIsExact pins the sweep-fleet contract:
// however the cells are grouped into shards — and however the per-cell
// states travel through checkpoint JSON — refolding them in cell-index
// order reproduces the single-process accumulator bit for bit.
func TestWelfordMergeShardGroupingIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		nCells := 1 + rng.Intn(40)
		cells := make([]Welford, nCells)
		for i := range cells {
			cells[i] = randWelford(rng)
		}
		ref := foldInOrder(cells)
		for _, m := range []int{1, 3, 7} {
			// Scatter cells across m shards, round-trip each shard's
			// states through JSON (the checkpoint journey), regroup by
			// index, refold.
			type rec struct {
				Idx   int          `json:"idx"`
				State WelfordState `json:"state"`
			}
			shards := make([][]rec, m)
			for i := range cells {
				s := rng.Intn(m)
				shards[s] = append(shards[s], rec{Idx: i, State: cells[i].State()})
			}
			regrouped := make([]Welford, nCells)
			for _, shard := range shards {
				for _, r := range shard {
					b, err := json.Marshal(r)
					if err != nil {
						t.Fatal(err)
					}
					var back rec
					if err := json.Unmarshal(b, &back); err != nil {
						t.Fatal(err)
					}
					regrouped[back.Idx] = WelfordFromState(back.State)
				}
			}
			got := foldInOrder(regrouped)
			if got.State() != ref.State() {
				t.Fatalf("trial %d, m=%d: shard grouping changed the fold:\n got %+v\nwant %+v",
					trial, m, got.State(), ref.State())
			}
		}
	}
}

// TestWelfordStateRoundTripIsExact: State → JSON → FromState is the
// identity on every internal moment, including awkward float64s.
func TestWelfordStateRoundTripIsExact(t *testing.T) {
	f := func(n uint16, mean, m2, lo, hi float64) bool {
		if mean != mean || m2 != m2 || lo != lo || hi != hi ||
			math.IsInf(mean, 0) || math.IsInf(m2, 0) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true // NaN/Inf never occur in real accumulators and cannot ride JSON
		}
		s := WelfordState{N: int(n), Mean: mean, M2: m2, Min: lo, Max: hi}
		b, err := json.Marshal(s)
		if err != nil {
			return false
		}
		var back WelfordState
		if err := json.Unmarshal(b, &back); err != nil {
			return false
		}
		w := WelfordFromState(back)
		return w.State() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestWelfordMergeCommutes: A⊕B and B⊕A agree exactly on count, min and
// max, and up to floating-point rounding on mean and variance (the two
// orders round differently in the last ulps — which is exactly why the
// fleet fixes one fold order rather than relying on commutativity).
func TestWelfordMergeCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		a, b := randWelford(rng), randWelford(rng)
		ab, ba := a, b
		ab.Merge(&b)
		ba.Merge(&a)
		if ab.N() != ba.N() {
			t.Fatalf("trial %d: N differs: %d vs %d", trial, ab.N(), ba.N())
		}
		if ab.N() == 0 {
			continue
		}
		if ab.Min() != ba.Min() || ab.Max() != ba.Max() {
			t.Fatalf("trial %d: extrema differ: [%v,%v] vs [%v,%v]",
				trial, ab.Min(), ab.Max(), ba.Min(), ba.Max())
		}
		if !closeEnough(ab.Mean(), ba.Mean()) {
			t.Fatalf("trial %d: means differ beyond rounding: %v vs %v", trial, ab.Mean(), ba.Mean())
		}
		if ab.N() >= 2 && !closeEnough(ab.Variance(), ba.Variance()) {
			t.Fatalf("trial %d: variances differ beyond rounding: %v vs %v", trial, ab.Variance(), ba.Variance())
		}
	}
}

// TestWelfordMergeAssociates: (A⊕B)⊕C vs A⊕(B⊕C), same contract as
// commutativity — exact on counts and extrema, rounding-tight on moments.
func TestWelfordMergeAssociates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randWelford(rng), randWelford(rng), randWelford(rng)
		left := a // (a⊕b)⊕c
		left.Merge(&b)
		left.Merge(&c)
		bc := b // a⊕(b⊕c)
		bc.Merge(&c)
		right := a
		right.Merge(&bc)
		if left.N() != right.N() {
			t.Fatalf("trial %d: N differs: %d vs %d", trial, left.N(), right.N())
		}
		if left.N() == 0 {
			continue
		}
		if left.Min() != right.Min() || left.Max() != right.Max() {
			t.Fatalf("trial %d: extrema differ", trial)
		}
		if !closeEnough(left.Mean(), right.Mean()) {
			t.Fatalf("trial %d: means differ beyond rounding: %v vs %v", trial, left.Mean(), right.Mean())
		}
		if left.N() >= 2 && !closeEnough(left.Variance(), right.Variance()) {
			t.Fatalf("trial %d: variances differ beyond rounding: %v vs %v", trial, left.Variance(), right.Variance())
		}
	}
}

// TestWelfordMergeWithEmptyIsExactIdentity: merging an empty accumulator
// in either direction changes nothing, bit for bit — the property that
// lets empty shards and zero-replica cells ride the fold for free.
func TestWelfordMergeWithEmptyIsExactIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a := randWelford(rng)
		var empty Welford
		got := a
		got.Merge(&empty)
		if got.State() != a.State() {
			t.Fatalf("trial %d: a⊕∅ changed bits", trial)
		}
		got = empty
		got.Merge(&a)
		if got.State() != a.State() {
			t.Fatalf("trial %d: ∅⊕a changed bits", trial)
		}
		got = a
		got.Merge(nil)
		if got.State() != a.State() {
			t.Fatalf("trial %d: a⊕nil changed bits", trial)
		}
	}
}

// TestWelfordMergeMatchesDirectAdd: merging chunk accumulators agrees
// with adding every observation to one accumulator, up to rounding.
func TestWelfordMergeMatchesDirectAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 100
		}
		var direct Welford
		for _, x := range xs {
			direct.Add(x)
		}
		var merged Welford
		for lo := 0; lo < n; {
			hi := lo + 1 + rng.Intn(n-lo)
			var chunk Welford
			for _, x := range xs[lo:hi] {
				chunk.Add(x)
			}
			merged.Merge(&chunk)
			lo = hi
		}
		if merged.N() != direct.N() || merged.Min() != direct.Min() || merged.Max() != direct.Max() {
			t.Fatalf("trial %d: count/extrema differ", trial)
		}
		if !closeEnough(merged.Mean(), direct.Mean()) || !closeEnough(merged.Variance(), direct.Variance()) {
			t.Fatalf("trial %d: moments differ beyond rounding: mean %v vs %v, var %v vs %v",
				trial, merged.Mean(), direct.Mean(), merged.Variance(), direct.Variance())
		}
	}
}

// closeEnough compares within a tight relative tolerance — the few ulps
// different merge orders may round differently by.
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale || diff <= 1e-12
}
