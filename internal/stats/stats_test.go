package stats

import (
	"math"
	"testing"
	"testing/quick"

	"doda/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "single", give: []float64{5}, want: 5},
		{name: "pair", give: []float64{2, 4}, want: 3},
		{name: "mixed signs", give: []float64{-1, 0, 1}, want: 0},
		{name: "fractional", give: []float64{1, 2}, want: 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of 2,4,4,4,5,5,7,9 is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 0.25, want: 2},
		{q: 0.5, want: 3},
		{q: 1, want: 5},
		{q: -0.5, want: 1}, // clamped
		{q: 1.5, want: 5},  // clamped
		{q: 0.1, want: 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Errorf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Median, 5.5, 1e-12) {
		t.Errorf("Median = %v", s.Median)
	}
	if s.Min != 1 || s.Max != 10 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P90 <= s.Median || s.P99 < s.P90 {
		t.Errorf("quantile ordering violated: median=%v p90=%v p99=%v", s.Median, s.P90, s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean, "Median": s.Median, "Min": s.Min, "Max": s.Max,
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty sample = %v, want NaN", name, v)
		}
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	src := rng.New(99)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = src.Float64()*100 - 50
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-7) {
		t.Errorf("Welford var %v != batch %v", w.Variance(), Variance(xs))
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Errorf("Welford min/max mismatch")
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty Welford should return NaN everywhere")
	}
}

func TestHarmonicSmall(t *testing.T) {
	tests := []struct {
		n    int
		want float64
	}{
		{n: 0, want: 0},
		{n: -3, want: 0},
		{n: 1, want: 1},
		{n: 2, want: 1.5},
		{n: 4, want: 25.0 / 12.0},
	}
	for _, tt := range tests {
		if got := Harmonic(tt.n); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Harmonic(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
}

func TestHarmonicAsymptoticContinuity(t *testing.T) {
	// The asymptotic branch must agree with exact summation at the
	// crossover to many digits.
	exact := 0.0
	for i := 1; i <= 5000; i++ {
		exact += 1 / float64(i)
	}
	if got := Harmonic(5000); !almostEqual(got, exact, 1e-9) {
		t.Errorf("Harmonic(5000) = %v, exact %v", got, exact)
	}
}

func TestHarmonicMonotone(t *testing.T) {
	prev := 0.0
	for n := 1; n < 3000; n += 7 {
		h := Harmonic(n)
		if h <= prev {
			t.Fatalf("Harmonic not increasing at n=%d: %v <= %v", n, h, prev)
		}
		prev = h
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("want error for single point")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant x")
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 3 x^2.5 must be recovered exactly.
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 * math.Pow(v, 2.5)
	}
	f, err := LogLogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2.5, 1e-9) {
		t.Errorf("exponent = %v, want 2.5", f.Slope)
	}
	if !almostEqual(math.Exp(f.Intercept), 3, 1e-9) {
		t.Errorf("constant = %v, want 3", math.Exp(f.Intercept))
	}
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	if _, err := LogLogFit([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("want error for x=0")
	}
	if _, err := LogLogFit([]float64{1, 2}, []float64{-1, 1}); err == nil {
		t.Error("want error for y<0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("want error for empty range")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 5); got != 2 {
		t.Errorf("Ratio = %v", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio with zero expected should be NaN")
	}
}

func TestWithinFactor(t *testing.T) {
	tests := []struct {
		name    string
		m, e, f float64
		want    bool
	}{
		{name: "exact", m: 100, e: 100, f: 1, want: true},
		{name: "within2 low", m: 51, e: 100, f: 2, want: true},
		{name: "within2 high", m: 199, e: 100, f: 2, want: true},
		{name: "outside low", m: 49, e: 100, f: 2, want: false},
		{name: "outside high", m: 201, e: 100, f: 2, want: false},
		{name: "bad factor", m: 100, e: 100, f: 0.5, want: false},
		{name: "nonpositive", m: 0, e: 100, f: 2, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := WithinFactor(tt.m, tt.e, tt.f); got != tt.want {
				t.Errorf("WithinFactor(%v,%v,%v) = %v", tt.m, tt.e, tt.f, got)
			}
		})
	}
}

func TestMeanCI95ShrinksWithN(t *testing.T) {
	src := rng.New(7)
	small := make([]float64, 50)
	large := make([]float64, 5000)
	for i := range small {
		small[i] = src.Float64()
	}
	for i := range large {
		large[i] = src.Float64()
	}
	if MeanCI95(large) >= MeanCI95(small) {
		t.Errorf("CI should shrink with sample size: %v vs %v", MeanCI95(large), MeanCI95(small))
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	f := func(seed uint64, qRaw uint8) bool {
		src := rng.New(seed)
		n := src.Intn(100) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64() * 1000
		}
		q := float64(qRaw) / 255
		v := Quantile(xs, q)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWelfordMeanBounded(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		var w Welford
		for i := 0; i < 64; i++ {
			w.Add(src.Float64())
		}
		return w.Mean() >= w.Min() && w.Mean() <= w.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWelfordMergeMatchesSequential pins the parallel-merge identity the
// sweep totals rely on: merging shard accumulators must equal adding all
// observations to a single accumulator.
func TestWelfordMergeMatchesSequential(t *testing.T) {
	src := rng.New(11)
	var whole Welford
	shards := make([]Welford, 4)
	for i := 0; i < 1000; i++ {
		x := src.Float64()*200 - 100
		whole.Add(x)
		shards[i%len(shards)].Add(x)
	}
	var merged Welford
	for i := range shards {
		merged.Merge(&shards[i])
	}
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if !almostEqual(merged.Mean(), whole.Mean(), 1e-9) {
		t.Errorf("mean %v, want %v", merged.Mean(), whole.Mean())
	}
	if !almostEqual(merged.Variance(), whole.Variance(), 1e-9) {
		t.Errorf("variance %v, want %v", merged.Variance(), whole.Variance())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Errorf("min/max (%v,%v), want (%v,%v)", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatalf("N = %d", a.N())
	}
	b.Add(3)
	b.Add(5)
	a.Merge(&b) // into empty
	if a.N() != 2 || a.Mean() != 4 {
		t.Fatalf("a = (%d, %v)", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(&c) // empty into non-empty
	a.Merge(nil)
	if a.N() != 2 || a.Mean() != 4 || a.Min() != 3 || a.Max() != 5 {
		t.Fatalf("a = (%d, %v, %v, %v)", a.N(), a.Mean(), a.Min(), a.Max())
	}
}
