package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData reports a statistic requested over an empty sample.
var ErrNoData = errors.New("stats: no data")

// Mean returns the arithmetic mean of xs, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for an empty
// sample and clamps q into [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Summary holds the standard descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. Fields requiring at least two points
// (Var, StdDev) are NaN for smaller samples.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Var:  Variance(xs),
		Min:  Min(xs),
		Max:  Max(xs),
	}
	s.StdDev = math.Sqrt(s.Var)
	if len(xs) > 0 {
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		s.Median = quantileSorted(sorted, 0.5)
		s.P90 = quantileSorted(sorted, 0.9)
		s.P99 = quantileSorted(sorted, 0.99)
	} else {
		s.Median, s.P90, s.P99 = math.NaN(), math.NaN(), math.NaN()
	}
	return s
}

// MeanCI95 returns the half-width of the normal-approximation 95%
// confidence interval for the mean of xs (1.96 * stderr). NaN if len < 2.
func MeanCI95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Welford is a streaming mean/variance accumulator. The zero value is an
// empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds the observations accumulated in o into w, as if every
// observation added to o had been added to w directly (Chan et al.'s
// parallel variance update). It lets sharded sweep workers keep private
// accumulators and combine them at the end without a lock on every Add.
func (w *Welford) Merge(o *Welford) {
	if o == nil || o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// WelfordState is the exported snapshot of a Welford accumulator — the
// exact internal moments, so an accumulator can be journaled to JSON and
// restored bit-for-bit. Go's JSON encoder emits float64s in the shortest
// round-trippable form, so State → JSON → FromState is lossless; that is
// what lets a resumed or merged sweep reproduce a Totals line
// byte-identical to an uninterrupted run.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State snapshots the accumulator.
func (w *Welford) State() WelfordState {
	return WelfordState{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max}
}

// WelfordFromState rebuilds the accumulator a State call snapshotted.
func WelfordFromState(s WelfordState) Welford {
	return Welford{n: s.N, mean: s.Mean, m2: s.M2, min: s.Min, max: s.Max}
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased sample variance (NaN if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (NaN if empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN if empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Harmonic returns the n-th harmonic number H(n) = sum_{i=1..n} 1/i.
// H(0) = 0. The paper's closed forms for Waiting and the offline optimum
// are expressed with H(n-1).
func Harmonic(n int) float64 {
	if n <= 0 {
		return 0
	}
	// Exact summation below the crossover, asymptotic expansion above: the
	// expansion error is < 1/(120 n^4), far below experiment noise.
	if n < 1024 {
		h := 0.0
		for i := 1; i <= n; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.5772156649015328606
	fn := float64(n)
	return math.Log(fn) + gamma + 1/(2*fn) - 1/(12*fn*fn)
}

// Fit is the result of a least-squares line fit y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit fits y = a*x + b by ordinary least squares. It returns an
// error when fewer than two points are supplied or x is constant.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, ErrNoData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("stats: x values are constant")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// Coefficient of determination.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogLogFit fits y = c * x^e by least squares on (log x, log y) and
// returns the exponent e (Slope), log-intercept, and R². Points with
// non-positive coordinates are rejected with an error. This is how the
// harness estimates the empirical growth exponents (2 for Gathering,
// ~1.5 for Waiting Greedy, ~1 for the offline optimum up to log factors).
func LogLogFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(x), len(y))
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit needs positive data, got (%v,%v)", x[i], y[i])
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations below Lo
	Over     int // observations at or above Hi
	binWidth float64
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It returns an error if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%v,%v)", lo, hi)
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, bins),
		binWidth: (hi - lo) / float64(bins),
	}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // float round-off at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including outliers.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Ratio returns measured/expected, the harness's headline
// closeness-to-theory figure. Returns NaN when expected is zero.
func Ratio(measured, expected float64) float64 {
	if expected == 0 {
		return math.NaN()
	}
	return measured / expected
}

// WithinFactor reports whether measured is within factor f of expected,
// i.e. expected/f <= measured <= expected*f. Used by experiment verdicts
// where the paper gives a Θ() bound rather than an exact constant.
func WithinFactor(measured, expected, f float64) bool {
	if expected <= 0 || measured <= 0 || f < 1 {
		return false
	}
	return measured >= expected/f && measured <= expected*f
}
