package doda_test

import (
	"fmt"

	"doda"
)

// The simplest possible run: Gathering against the randomized adversary.
func ExampleRun() {
	adv, _, err := doda.RandomizedAdversary(8, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := doda.Run(doda.Config{N: 8, MaxInteractions: 1 << 16}, doda.NewGathering(), adv)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Terminated, res.Transmissions)
	// Output: true 7
}

// Aggregating a minimum: the sink ends with the smallest payload,
// assembled from every node exactly once.
func ExampleRun_minAggregation() {
	adv, _, err := doda.RandomizedAdversary(5, 3)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := doda.Run(doda.Config{
		N:               5,
		Agg:             doda.Min,
		Payloads:        []float64{40, 10, 30, 20, 50},
		MaxInteractions: 1 << 16,
		VerifyAggregate: true,
	}, doda.NewGathering(), adv)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.SinkValue.Num, res.SinkValue.Count)
	// Output: 10 5
}

// Waiting Greedy needs the meetTime oracle over the same stream the
// adversary plays.
func ExampleNewWaitingGreedy() {
	const n = 16
	adv, stream, err := doda.RandomizedAdversary(n, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	budget := 40 * n * n
	know, err := doda.NewKnowledge(doda.WithMeetTime(stream, 0, budget))
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := doda.Run(doda.Config{N: n, MaxInteractions: budget, Know: know},
		doda.NewWaitingGreedy(doda.TauStar(n)), adv)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Terminated)
	// Output: true
}

// The successive-convergecast clock turns a duration into the paper's
// cost (§2.3): how many optimal offline aggregations would have fit.
func ExampleNewClock() {
	s, err := doda.NewSequence(3, []doda.Interaction{
		{U: 1, V: 2}, {U: 0, V: 1}, // convergecast 1
		{U: 1, V: 2}, {U: 0, V: 1}, // convergecast 2
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	clock, err := doda.NewClock(s, 0, s.Len())
	if err != nil {
		fmt.Println(err)
		return
	}
	costOptimal, _ := clock.Cost(1) // finished at t=1: optimal
	costSlow, _ := clock.Cost(3)    // finished at t=3: one convergecast late
	fmt.Println(costOptimal, costSlow)
	// Output: 1 2
}

// The Theorem 1 adversary defeats every algorithm on three nodes.
func ExampleTheorem1Adversary() {
	adv, err := doda.Theorem1Adversary(0)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := doda.Run(doda.Config{N: 3, MaxInteractions: 10000}, doda.NewGathering(), adv)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Terminated)
	// Output: false
}

// An optimal offline convergecast plan assigns every non-sink node one
// send time and receiver.
func ExamplePlanConvergecast() {
	s, err := doda.NewSequence(3, []doda.Interaction{
		{U: 1, V: 2}, {U: 0, V: 1},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := doda.PlanConvergecast(s, 0, 0, s.Len())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(plan.End, plan.SendTime[2], plan.Receiver[2])
	// Output: 1 0 1
}
