package doda_test

// Root-level coverage of the scenario re-exports: library users must be
// able to drive every workload generator without importing internal/.

import (
	"strings"
	"testing"

	"doda"
)

func TestScenarioRegistryExported(t *testing.T) {
	specs := doda.Scenarios()
	if len(specs) < 4 {
		t.Fatalf("only %d registered scenarios, want >= 4", len(specs))
	}
	if _, ok := doda.ScenarioByName("community"); !ok {
		t.Error("community scenario not found by name")
	}
}

func TestScenarioModelsThroughRootAPI(t *testing.T) {
	const n = 14
	uni, err := doda.NewUniformScenario(n)
	if err != nil {
		t.Fatal(err)
	}
	em, err := doda.NewEdgeMarkovian(n, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := doda.EvenCommunitySizes(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := doda.NewCommunity(sizes, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := doda.NewChurn(uni, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []doda.ScenarioModel{uni, em, cm, ch} {
		adv, stream, err := doda.ScenarioAdversary(m, 11)
		if err != nil {
			t.Fatal(err)
		}
		if stream == nil {
			t.Fatalf("%s: nil stream", m.Name())
		}
		res, err := doda.Run(doda.Config{N: n, MaxInteractions: 400 * n * n},
			doda.NewGathering(), adv)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Terminated {
			t.Errorf("%s: gathering did not terminate: %+v", m.Name(), res)
		}
	}
}

func TestReplayTraceThroughRootAPI(t *testing.T) {
	s, err := doda.ReplayTrace(strings.NewReader("0,0,1\n1,1,2\n2,2,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 || s.Len() != 3 {
		t.Fatalf("n=%d len=%d, want 3/3", s.N(), s.Len())
	}
	adv, err := doda.TraceAdversary(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := doda.Run(doda.Config{N: s.N(), MaxInteractions: s.Len()},
		doda.NewGathering(), adv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Errorf("res = %+v", res)
	}
}
