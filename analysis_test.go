package doda_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"doda"
)

// TestAnalyzeSweepThroughRootAPI drives the whole analysis surface as a
// library user would: run a sweep, extract scaling laws, render the
// report — without touching internal/.
func TestAnalyzeSweepThroughRootAPI(t *testing.T) {
	grid := doda.SweepGrid{
		Scenarios:  []doda.SweepScenario{{Name: "uniform"}},
		Algorithms: []string{"gathering"},
		Sizes:      []int{12, 16, 24, 32},
		Replicas:   8,
		Seed:       3,
	}
	results, _, err := doda.RunSweep(grid, doda.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := doda.AnalyzeSweep(results, doda.SweepAnalysisOptions{Bootstrap: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(a.Groups))
	}
	g := a.Groups[0]
	if g.Law == nil {
		t.Fatalf("no law fitted: %s", g.Note)
	}
	free, ok := g.Law.FreeFit()
	if !ok || math.Abs(free.Exponent-2) > 0.6 {
		t.Errorf("free exponent %.3f, want near 2 for gathering", free.Exponent)
	}
	var buf bytes.Buffer
	if err := doda.WriteSweepAnalysis(&buf, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# Scaling-law report") {
		t.Error("report missing its header")
	}

	// Round-trip through the JSONL stream reader.
	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	_, _, err = doda.RunSweep(grid, doda.SweepOptions{OnResult: func(r doda.SweepCellResult) error {
		return enc.Encode(r)
	}})
	if err != nil {
		t.Fatal(err)
	}
	read, err := doda.ReadSweepResults(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(read) != len(results) {
		t.Errorf("stream round-trip lost cells: %d != %d", len(read), len(results))
	}
}

func TestFitScalingLawThroughRootAPI(t *testing.T) {
	ns := []float64{16, 32, 64, 128}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 2 * math.Pow(n, 1.5)
	}
	law, err := doda.FitScalingLaw(ns, ys, doda.SweepAnalysisOptions{Bootstrap: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	free, ok := law.FreeFit()
	if !ok || math.Abs(free.Exponent-1.5) > 1e-9 {
		t.Errorf("free exponent = %v, want 1.5", free.Exponent)
	}
	if law.Best == "" {
		t.Error("no model selected")
	}
}
