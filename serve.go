package doda

// Serving subsystem re-exports: library users embed the continuous
// aggregation server through the root package and never import
// internal/. See internal/serve/doc.go for the durability,
// backpressure, and failure contracts.

import "doda/internal/serve"

// Serving types.
type (
	// ServeOptions tunes one server (data directory, queue bounds,
	// snapshot cadence, stall watchdog).
	ServeOptions = serve.Options
	// ServeServer multiplexes many live aggregation instances; its
	// Handler method exposes the HTTP API cmd/dodaserve serves.
	ServeServer = serve.Server
	// ServeInstance is one registered aggregation instance.
	ServeInstance = serve.Instance
	// ServeInstanceConfig registers an instance (name, n, algorithm,
	// aggregate, provenance).
	ServeInstanceConfig = serve.InstanceConfig
	// ServeHandle resolves when an accepted ingest batch is applied.
	ServeHandle = serve.Handle
	// ServeInstanceStatus is one instance's row in the status report.
	ServeInstanceStatus = serve.InstanceStatus
	// ServeServerStatus is the whole-server status report.
	ServeServerStatus = serve.ServerStatus
)

// Serving errors callers branch on.
var (
	// ErrServeBackpressure means the instance's admission budget is
	// full; retry after a backoff (HTTP surfaces this as 429).
	ErrServeBackpressure = serve.ErrBackpressure
	// ErrServeDraining means the server is shutting down gracefully.
	ErrServeDraining = serve.ErrDraining
	// ErrServeInstanceDone means the instance's aggregation terminated
	// and takes no further ingest.
	ErrServeInstanceDone = serve.ErrInstanceDone
)

// NewServeServer builds a continuous aggregation server. With
// Options.Dir set, every instance write-ahead-logs its ingest and a
// restart over the same directory recovers byte-identical state.
func NewServeServer(opt ServeOptions) (*ServeServer, error) {
	return serve.NewServer(opt)
}
