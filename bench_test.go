package doda

// Benchmark harness: one Benchmark per experiment in DESIGN.md's index.
// Each benchmark measures the core workload that regenerates the
// corresponding paper result (the full sweeps live in
// `go run ./cmd/dodabench`); b.ReportMetric exposes the model-level
// quantity (interactions) next to wall-clock cost.

import (
	"fmt"
	"math"
	"testing"

	"doda/internal/adversary"
	"doda/internal/algorithms"
	"doda/internal/core"
	"doda/internal/knowledge"
	"doda/internal/offline"
	"doda/internal/rng"
	"doda/internal/scenario"
	"doda/internal/seq"
	"doda/internal/sim"
	"doda/internal/sweep"
)

func benchSizes(b *testing.B) []int {
	if testing.Short() {
		return []int{32}
	}
	return []int{32, 64, 128}
}

func runRandomized(b *testing.B, n int, seed uint64, alg core.Algorithm, cap int) core.Result {
	b.Helper()
	adv, _, err := adversary.Randomized(n, seed)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap}, alg, adv)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Terminated {
		b.Fatalf("run did not terminate: %+v", res)
	}
	return res
}

// BenchmarkE1AdaptiveDefeat: Theorem 1 — adaptive adversary blocking
// Gathering forever (one bounded horizon per op).
func BenchmarkE1AdaptiveDefeat(b *testing.B) {
	const horizon = 10000
	for i := 0; i < b.N; i++ {
		adv, err := adversary.NewTheorem1(3, 0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: 3, MaxInteractions: horizon},
			algorithms.NewGathering(), adv)
		if err != nil {
			b.Fatal(err)
		}
		if res.Terminated {
			b.Fatal("theorem 1 adversary failed")
		}
	}
}

// BenchmarkE2ObliviousDefeat: Theorem 2 — the star+blocking-loop sequence
// against an oblivious randomized algorithm.
func BenchmarkE2ObliviousDefeat(b *testing.B) {
	const n = 32
	built, err := adversary.BuildTheorem2(n, 4*n, 3, 4*n)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		adv, err := adversary.NewOblivious("theorem2", built)
		if err != nil {
			b.Fatal(err)
		}
		alg, err := algorithms.NewGatheringTieBreak(algorithms.RandomTieBreak, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunOnce(core.Config{N: n, MaxInteractions: built.Len()}, alg, adv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3UnderlyingGraph: Theorem 3 — the cycle adversary against the
// spanning-tree algorithm.
func BenchmarkE3UnderlyingGraph(b *testing.B) {
	const horizon = 10000
	for i := 0; i < b.N; i++ {
		adv, err := adversary.NewTheorem3(4, 0)
		if err != nil {
			b.Fatal(err)
		}
		g, err := adv.UnderlyingGraph()
		if err != nil {
			b.Fatal(err)
		}
		know, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: 4, MaxInteractions: horizon, Know: know},
			algorithms.NewSpanningTree(), adv)
		if err != nil {
			b.Fatal(err)
		}
		if res.Terminated {
			b.Fatal("theorem 3 adversary failed")
		}
	}
}

// BenchmarkE4SpanningTree: Theorem 4 — spanning-tree convergecast under a
// delayed recurrent schedule.
func BenchmarkE4SpanningTree(b *testing.B) {
	const n = 16
	g, err := buildE4Graph(n)
	if err != nil {
		b.Fatal(err)
	}
	edges := g.Edges()
	for i := 0; i < b.N; i++ {
		adv, _, err := adversary.DelayedRecurrent(n, edges[1:], edges[0], 8)
		if err != nil {
			b.Fatal(err)
		}
		know, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunOnce(core.Config{N: n, MaxInteractions: 1 << 18, Know: know},
			algorithms.NewSpanningTree(), adv); err != nil {
			b.Fatal(err)
		}
	}
}

func buildE4Graph(n int) (*Graph, error) {
	// A cycle: every edge is removable, every node reachable.
	steps := make([]seq.Interaction, 0, n)
	for i := 0; i < n; i++ {
		it, err := seq.NewInteraction(NodeID(i), NodeID((i+1)%n))
		if err != nil {
			return nil, err
		}
		steps = append(steps, it)
	}
	s, err := seq.NewSequence(n, steps)
	if err != nil {
		return nil, err
	}
	return s.UnderlyingGraph(), nil
}

// BenchmarkE5TreeOptimal: Theorem 5 — optimal convergecast on a path
// tree, leaf-first schedule.
func BenchmarkE5TreeOptimal(b *testing.B) {
	const n = 64
	steps := make([]seq.Interaction, 0, n-1)
	for i := n - 2; i >= 0; i-- {
		steps = append(steps, seq.Interaction{U: NodeID(i), V: NodeID(i + 1)})
	}
	s, err := seq.NewSequence(n, steps)
	if err != nil {
		b.Fatal(err)
	}
	rounds := s.Repeat(2)
	g := s.UnderlyingGraph()
	for i := 0; i < b.N; i++ {
		adv, err := adversary.NewOblivious("tree", rounds)
		if err != nil {
			b.Fatal(err)
		}
		know, err := knowledge.NewBundle(knowledge.WithUnderlying(g))
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: n, MaxInteractions: rounds.Len(), Know: know},
			algorithms.NewSpanningTree(), adv)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Terminated || res.Duration != n-2 {
			b.Fatalf("not optimal: %+v", res)
		}
	}
}

// BenchmarkE6FutureCost: Theorem 6 — future gossip + optimal suffix
// schedule on a uniform sequence.
func BenchmarkE6FutureCost(b *testing.B) {
	const n = 16
	for i := 0; i < b.N; i++ {
		_, stream, err := adversary.Randomized(n, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		length := 40 * n * n
		prefix := stream.Prefix(length)
		know, err := knowledge.NewBundle(knowledge.WithFutures(prefix))
		if err != nil {
			b.Fatal(err)
		}
		adv, err := adversary.NewOblivious("uniform", prefix)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: n, MaxInteractions: length, Know: know},
			algorithms.NewFutureOptimal(length), adv)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Terminated {
			b.Fatalf("did not terminate: %+v", res)
		}
	}
}

// BenchmarkE7LowerBound: Theorem 7 — the Ω(n²) final transmission,
// measured on Gathering runs.
func BenchmarkE7LowerBound(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var gaps float64
			for i := 0; i < b.N; i++ {
				res := runRandomized(b, n, uint64(i), algorithms.NewGathering(), 40*n*n+4000)
				gaps += float64(res.LastGap + 1)
			}
			b.ReportMetric(gaps/float64(b.N), "final-gap/op")
		})
	}
}

// BenchmarkE8OfflineOptimal: Theorem 8 — one optimal convergecast
// computation per op.
func BenchmarkE8OfflineOptimal(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			horizon := 40*n*int(math.Log(float64(n))) + 512
			var total float64
			for i := 0; i < b.N; i++ {
				_, stream, err := adversary.Randomized(n, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				end, ok := offline.Opt(stream, 0, 0, horizon)
				if !ok {
					b.Fatal("no convergecast within horizon")
				}
				total += float64(end + 1)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkE9Waiting: Theorem 9 — one Waiting run per op.
func BenchmarkE9Waiting(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res := runRandomized(b, n, uint64(i), algorithms.Waiting{},
					int(40*float64(n*n)*math.Log(float64(n)))+4000)
				total += float64(res.Duration + 1)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkE10Gathering: Theorem 9/Corollary 2 — one Gathering run per
// op; interactions/op tracks (n-1)².
func BenchmarkE10Gathering(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res := runRandomized(b, n, uint64(i), algorithms.NewGathering(), 40*n*n+4000)
				total += float64(res.Duration + 1)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkE11SinkMeetings: Lemma 1 — interactions until the sink meets
// √(n ln n) distinct nodes.
func BenchmarkE11SinkMeetings(b *testing.B) {
	const n = 128
	target := int(math.Sqrt(float64(n) * math.Log(float64(n))))
	var total float64
	for i := 0; i < b.N; i++ {
		_, stream, err := adversary.Randomized(n, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		seen := make(map[NodeID]bool, target)
		steps := 0
		for len(seen) < target {
			it := stream.At(steps)
			steps++
			if other, ok := it.Other(0); ok {
				seen[other] = true
			}
		}
		total += float64(steps)
	}
	b.ReportMetric(total/float64(b.N), "interactions/op")
}

// BenchmarkE12WaitingGreedy: Theorem 10/Corollary 3 — one WG(τ*) run per
// op, including the meetTime oracle look-ahead.
func BenchmarkE12WaitingGreedy(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tau := algorithms.TauStar(n)
			cap := 3*tau + 12*n*n
			var total float64
			for i := 0; i < b.N; i++ {
				adv, stream, err := adversary.Randomized(n, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				know, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, cap))
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap, Know: know},
					algorithms.WaitingGreedy{Tau: tau}, adv)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Terminated {
					b.Fatalf("did not terminate: %+v", res)
				}
				total += float64(res.Duration + 1)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkE13MeetTimeOptimal: Theorem 11 — the Gathering-vs-WG(τ*)
// head-to-head at one size.
func BenchmarkE13MeetTimeOptimal(b *testing.B) {
	const n = 64
	b.Run("gathering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runRandomized(b, n, uint64(i), algorithms.NewGathering(), 40*n*n+4000)
		}
	})
	b.Run("waiting-greedy", func(b *testing.B) {
		tau := algorithms.TauStar(n)
		cap := 3*tau + 12*n*n
		for i := 0; i < b.N; i++ {
			adv, stream, err := adversary.Randomized(n, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			know, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, cap))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap, Know: know},
				algorithms.WaitingGreedy{Tau: tau}, adv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14FutureRandomized: Corollary 1 — future-optimal under the
// randomized adversary.
func BenchmarkE14FutureRandomized(b *testing.B) {
	const n = 24
	length := 60 * n * int(math.Log(float64(n)))
	for i := 0; i < b.N; i++ {
		_, stream, err := adversary.Randomized(n, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		prefix := stream.Prefix(length)
		know, err := knowledge.NewBundle(knowledge.WithFutures(prefix))
		if err != nil {
			b.Fatal(err)
		}
		adv, err := adversary.NewOblivious("uniform", prefix)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: n, MaxInteractions: length, Know: know},
			algorithms.NewFutureOptimal(length), adv)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Terminated {
			b.Fatalf("did not terminate: %+v", res)
		}
	}
}

// BenchmarkA1GatheringTieBreak: ablation — tie-break variants.
func BenchmarkA1GatheringTieBreak(b *testing.B) {
	const n = 64
	variants := []struct {
		name string
		make func(i int) (core.Algorithm, error)
	}{
		{name: "first", make: func(int) (core.Algorithm, error) { return algorithms.NewGathering(), nil }},
		{name: "second", make: func(int) (core.Algorithm, error) {
			return algorithms.NewGatheringTieBreak(algorithms.SecondByID, 0)
		}},
		{name: "random", make: func(i int) (core.Algorithm, error) {
			return algorithms.NewGatheringTieBreak(algorithms.RandomTieBreak, uint64(i))
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg, err := v.make(i)
				if err != nil {
					b.Fatal(err)
				}
				runRandomized(b, n, uint64(i), alg, 40*n*n+4000)
			}
		})
	}
}

// BenchmarkA2TauSensitivity: ablation — WG at τ*/2, τ*, 2τ*.
func BenchmarkA2TauSensitivity(b *testing.B) {
	const n = 64
	star := algorithms.TauStar(n)
	for _, c := range []struct {
		name string
		tau  int
	}{
		{name: "half", tau: star / 2},
		{name: "star", tau: star},
		{name: "double", tau: 2 * star},
	} {
		b.Run(c.name, func(b *testing.B) {
			cap := 3*c.tau + 12*n*n
			for i := 0; i < b.N; i++ {
				adv, stream, err := adversary.Randomized(n, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				know, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, cap))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.RunOnce(core.Config{N: n, MaxInteractions: cap, Know: know},
					algorithms.WaitingGreedy{Tau: c.tau}, adv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA3EngineVsSim: ablation — sequential engine vs goroutine
// message-passing runtime on identical workloads.
func BenchmarkA3EngineVsSim(b *testing.B) {
	const n = 32
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runRandomized(b, n, uint64(i), algorithms.NewGathering(), 40*n*n+4000)
		}
	})
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			adv, _, err := adversary.Randomized(n, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			rt, err := sim.NewRuntime(sim.Config{N: n, MaxInteractions: 40*n*n + 4000})
			if err != nil {
				b.Fatal(err)
			}
			res, err := rt.Run(algorithms.NewGathering(), adv)
			rt.Close()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Terminated {
				b.Fatalf("did not terminate: %+v", res)
			}
		}
	})
}

// BenchmarkX1WeightedAdversary: extension — Gathering under a Zipf
// contact distribution (the paper's open question 3).
func BenchmarkX1WeightedAdversary(b *testing.B) {
	const n = 64
	ws, err := adversary.ZipfWeights(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	var total float64
	for i := 0; i < b.N; i++ {
		adv, _, err := adversary.Weighted(ws, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunOnce(core.Config{N: n, MaxInteractions: 1 << 22},
			algorithms.NewGathering(), adv)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Terminated {
			b.Fatalf("did not terminate: %+v", res)
		}
		total += float64(res.Duration + 1)
	}
	b.ReportMetric(total/float64(b.N), "interactions/op")
}

// BenchmarkX2KnowledgeLadder: extension — one run per knowledge rung at
// a fixed size.
func BenchmarkX2KnowledgeLadder(b *testing.B) {
	const n = 32
	b.Run("gathering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runRandomized(b, n, uint64(i), algorithms.NewGathering(), 40*n*n+4000)
		}
	})
	b.Run("full-knowledge", func(b *testing.B) {
		const horizon = 1 << 16
		for i := 0; i < b.N; i++ {
			adv, stream, err := adversary.Randomized(n, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			know, err := knowledge.NewBundle(knowledge.WithFullSequence(stream))
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.RunOnce(core.Config{N: n, MaxInteractions: horizon, Know: know},
				algorithms.NewFullKnowledge(horizon), adv)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Terminated {
				b.Fatalf("did not terminate: %+v", res)
			}
		}
	})
}

// BenchmarkA4MeetTimeOracle: ablation — amortised cost of the meetTime
// oracle's lazy look-ahead index.
func BenchmarkA4MeetTimeOracle(b *testing.B) {
	const n = 128
	_, stream, err := adversary.Randomized(n, 1)
	if err != nil {
		b.Fatal(err)
	}
	mtKnow, err := knowledge.NewBundle(knowledge.WithMeetTime(stream, 0, 1<<22))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NodeID(1 + i%(n-1))
		if _, _, err := mtKnow.MeetTime(u, i%100000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotPathEngine: the zero-allocation measurement loop — engine
// reuse via Reset, generated (non-caching) uniform adversary, Gathering.
// interactions/op is the model-level work per run; allocs/op must stay 0.
func BenchmarkHotPathEngine(b *testing.B) {
	const n = 64
	cfg := core.Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(1)))
	if err != nil {
		b.Fatal(err)
	}
	alg := algorithms.NewGathering()
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(alg, adv)
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Interactions)
	}
	b.ReportMetric(total/float64(b.N), "interactions/op")
}

// BenchmarkHotPathAliasDraw: one O(1) weighted draw from the Vose alias
// table (the weighted adversary's elementary step; allocs/op must be 0).
func BenchmarkHotPathAliasDraw(b *testing.B) {
	ws, err := adversary.ZipfWeights(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	table, err := rng.NewAlias(ws)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += table.Draw(src)
	}
	_ = sink
}

// BenchmarkHotPathWeightedGen: one full weighted interaction (two alias
// draws plus the without-replacement rejection), replacing the old O(n)
// CDF scan.
func BenchmarkHotPathWeightedGen(b *testing.B) {
	ws, err := adversary.ZipfWeights(1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := adversary.WeightedGen(ws, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen(i)
	}
}

// BenchmarkSweepGrid: whole-fleet throughput of the sharded sweep engine
// (cells/sec over a scenario×algorithm×size grid, all cores).
func BenchmarkSweepGrid(b *testing.B) {
	grid := sweep.Grid{
		Scenarios: []sweep.ScenarioRef{
			{Name: "uniform"},
			{Name: "zipf", Params: map[string]string{"alpha": "1"}},
			{Name: "community", Params: map[string]string{"communities": "2"}},
		},
		Algorithms: []string{"waiting", "gathering"},
		Sizes:      []int{16, 24},
		Replicas:   3,
		Seed:       4,
	}
	cells, err := grid.Cells()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sweep.Run(grid, sweep.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(cells))*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
}

// benchModels returns one instance of every generative scenario model.
func benchModels(b *testing.B, n int) []scenario.Model {
	b.Helper()
	uni, err := scenario.NewUniform(n)
	if err != nil {
		b.Fatal(err)
	}
	em, err := scenario.NewEdgeMarkovian(n, 0.05, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	sizes, err := scenario.EvenSizes(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	cm, err := scenario.NewCommunity(sizes, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := scenario.NewChurn(uni, 0.1, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	return []scenario.Model{uni, em, cm, ch}
}

// BenchmarkS1ScenarioGen: generation throughput of each scenario model
// (one interaction per op, raw generator without stream caching).
func BenchmarkS1ScenarioGen(b *testing.B) {
	const n = 64
	for _, m := range benchModels(b, n) {
		b.Run(m.Name(), func(b *testing.B) {
			gen := m.Generator(rng.New(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen(i)
			}
		})
	}
}

// BenchmarkS2ScenarioGathering: one full Gathering run per op against
// each scenario workload, the unit of every scenario sweep.
func BenchmarkS2ScenarioGathering(b *testing.B) {
	const n = 64
	for _, m := range benchModels(b, n) {
		b.Run(m.Name(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				adv, _, err := scenario.Adversary(m, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				res, err := core.RunOnce(core.Config{N: n, MaxInteractions: 1 << 22},
					algorithms.NewGathering(), adv)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Terminated {
					b.Fatalf("did not terminate: %+v", res)
				}
				total += float64(res.Duration + 1)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}

// BenchmarkHotPathEngineBatched: the batched measurement loop — identical
// workload to BenchmarkHotPathEngine but drained through NextBatch;
// allocs/op must stay 0 in steady state.
func BenchmarkHotPathEngineBatched(b *testing.B) {
	const n = 64
	cfg := core.Config{N: n, MaxInteractions: 400*n*n + 4000, VerifyAggregate: true}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(1)))
	if err != nil {
		b.Fatal(err)
	}
	alg := algorithms.NewGathering()
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Reset(cfg); err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run(alg, adv)
		if err != nil {
			b.Fatal(err)
		}
		total += float64(res.Interactions)
	}
	b.ReportMetric(total/float64(b.N), "interactions/op")
}

// BenchmarkLargeNEngine: capped large-n throughput of the batched engine
// under count-only provenance — the configuration the big sweep grids run.
func BenchmarkLargeNEngine(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			const cap = 1 << 20
			cfg := core.Config{N: n, MaxInteractions: cap, VerifyAggregate: true, Provenance: core.ProvenanceCount}
			eng, err := core.NewEngine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			alg := algorithms.NewGathering()
			var total float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := eng.Reset(cfg); err != nil {
					b.Fatal(err)
				}
				adv, err := adversary.NewGenerated("uniform", n, seq.UniformGen(n, rng.New(uint64(i))))
				if err != nil {
					b.Fatal(err)
				}
				res, err := eng.Run(alg, adv)
				if err != nil {
					b.Fatal(err)
				}
				total += float64(res.Interactions)
			}
			b.ReportMetric(total/float64(b.N), "interactions/op")
		})
	}
}
