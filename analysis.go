package doda

// Analysis subsystem re-exports: library users extract scaling laws
// from sweep results through the root package and never import
// internal/.

import (
	"io"

	"doda/internal/analysis"
	"doda/internal/sweep"
)

// Analysis types.
type (
	// SweepAnalysis is a whole sweep's scaling-law extraction: per
	// (scenario, algorithm) group fits plus parameter trend tests.
	SweepAnalysis = analysis.Analysis
	// SweepAnalysisOptions tunes the bootstrap resampling behind the
	// confidence intervals.
	SweepAnalysisOptions = analysis.Options
	// SweepGroupFit is one (scenario, algorithm) group's points and
	// candidate-model fit.
	SweepGroupFit = analysis.GroupFit
	// ScalingLawFit is a candidate-set fit over one point set: every
	// model's fit plus the AIC/BIC selection.
	ScalingLawFit = analysis.LawFit
	// ScalingModelFit is one candidate's fit (scale constant, free
	// exponent where applicable, bootstrap CIs, information criteria).
	ScalingModelFit = analysis.ModelFit
	// SweepTrend is a single-parameter monotonicity test (Kendall τ).
	SweepTrend = analysis.Trend
)

// AnalyzeSweep extracts scaling laws from completed sweep cells: groups
// them by (scenario, algorithm), fits the paper's candidate growth
// forms plus a free power law to each group's (n, mean duration)
// points, selects among the candidates by AIC/BIC with deterministic
// bootstrap confidence intervals, and tests single-parameter monotone
// trends. The result is deterministic given (results, opt).
func AnalyzeSweep(results []SweepCellResult, opt SweepAnalysisOptions) (*SweepAnalysis, error) {
	return analysis.Analyze(results, opt)
}

// AnalyzeSweepCheckpoint analyzes the checkpoint directories of a
// completed sweep — one unsharded checkpoint or a whole shard fleet —
// after validating them exactly as MergeSweepCheckpoints would.
func AnalyzeSweepCheckpoint(dirs []string, opt SweepAnalysisOptions) (*SweepAnalysis, error) {
	return analysis.AnalyzeCheckpoint(dirs, opt)
}

// FitScalingLaw fits every candidate growth form to the (n, y) points
// (at least three distinct sizes) and selects among them by AIC/BIC;
// the free power law c·n^a reports the empirical exponent with its
// bootstrap confidence interval.
func FitScalingLaw(ns, ys []float64, opt SweepAnalysisOptions) (*ScalingLawFit, error) {
	return analysis.FitScalingLaw(ns, ys, opt)
}

// WriteSweepAnalysis renders the deterministic markdown scaling-law
// report `dodasweep analyze` prints: same analysis, same bytes.
func WriteSweepAnalysis(w io.Writer, a *SweepAnalysis) error {
	return analysis.WriteMarkdown(w, a)
}

// ReadSweepResults decodes a stream of cell-result JSON lines (the
// dodasweep stdout format) back into typed results — the bridge from
// saved sweep output to AnalyzeSweep.
func ReadSweepResults(r io.Reader) ([]SweepCellResult, error) {
	return sweep.ReadResults(r)
}
