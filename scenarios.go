package doda

// Scenario subsystem re-exports: library users reach every workload
// generator through the root package and never import internal/.

import (
	"io"

	"doda/internal/scenario"
)

// Scenario types.
type (
	// ScenarioModel is a seedable dynamic-graph workload generator.
	ScenarioModel = scenario.Model
	// ScenarioSpec is one registry entry: name, parameters, citation and
	// builder.
	ScenarioSpec = scenario.Spec
	// ScenarioParam documents one scenario parameter.
	ScenarioParam = scenario.Param
	// ScenarioWorkload is a built scenario instance: adversary, backing
	// sequence view, and node count.
	ScenarioWorkload = scenario.Workload
)

// Scenarios returns the registered workload catalogue (uniform, zipf,
// edge-markovian, community, churn, trace).
func Scenarios() []ScenarioSpec { return scenario.All() }

// ScenarioByName finds a registered scenario.
func ScenarioByName(name string) (ScenarioSpec, bool) { return scenario.Lookup(name) }

// NewUniformScenario returns the uniform contact model (the paper's §4
// randomized adversary) as a scenario model, e.g. to wrap in NewChurn.
func NewUniformScenario(n int) (ScenarioModel, error) { return scenario.NewUniform(n) }

// NewEdgeMarkovian returns the edge-Markovian contact model: every
// potential edge appears with probability pUp per step and disappears
// with probability pDown.
func NewEdgeMarkovian(n int, pUp, pDown float64) (ScenarioModel, error) {
	return scenario.NewEdgeMarkovian(n, pUp, pDown)
}

// NewCommunity returns the community contact model over the given
// community sizes (nodes numbered consecutively by community);
// interactions are intra-community with probability pIntra.
func NewCommunity(sizes []int, pIntra float64) (ScenarioModel, error) {
	return scenario.NewCommunity(sizes, pIntra)
}

// EvenCommunitySizes splits n nodes into k near-equal communities, for
// NewCommunity.
func EvenCommunitySizes(n, k int) ([]int, error) { return scenario.EvenSizes(n, k) }

// NewChurn decorates an inner contact model with per-node online/offline
// availability chains: online nodes fail with probability pFail per step,
// offline nodes recover with probability pRecover.
func NewChurn(inner ScenarioModel, pFail, pRecover float64) (ScenarioModel, error) {
	return scenario.NewChurn(inner, pFail, pRecover)
}

// ReplayTrace parses a CSV contact trace (`time,u,v` rows, '#' comments,
// optional header) into a finite Sequence ordered by timestamp.
func ReplayTrace(r io.Reader) (*Sequence, error) { return scenario.ReplayTrace(r) }

// ScenarioAdversary wraps a scenario model into an oblivious adversary
// seeded with seed, plus the lazily materialised stream backing it (hand
// the stream to knowledge oracles so adversary and oracles agree).
func ScenarioAdversary(m ScenarioModel, seed uint64) (Adversary, *Stream, error) {
	return scenario.Adversary(m, seed)
}

// ScenarioStream wraps a scenario model into an unbounded sequence.
func ScenarioStream(m ScenarioModel, seed uint64) (*Stream, error) {
	return scenario.Stream(m, seed)
}

// TraceAdversary wraps a replayed trace as a finite oblivious adversary.
func TraceAdversary(s *Sequence) (Adversary, error) { return scenario.TraceAdversary(s) }
