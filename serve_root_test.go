package doda

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestServeReexports drives a tiny end-to-end aggregation through the
// root-package serving surface: register, ingest a star that gathers
// everything at the sink, and read the terminated state back.
func TestServeReexports(t *testing.T) {
	srv, err := NewServeServer(ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	inst, err := srv.Register(ServeInstanceConfig{
		Name: "root", N: 4, Algorithm: "gathering", Agg: "sum",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var star []Interaction
	for v := NodeID(1); v < 4; v++ {
		it, err := Pair(0, v)
		if err != nil {
			t.Fatal(err)
		}
		star = append(star, it)
	}
	// The star alone may leave the last transfer pending; repeat it so
	// the sink meets every remaining owner again.
	for round := 0; round < 4; round++ {
		h, err := inst.Ingest(ctx, star, 0)
		if errors.Is(err, ErrServeInstanceDone) {
			break // terminated before the full schedule — the goal state
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st, err := inst.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Result.Terminated {
		t.Fatalf("gathering on a repeated star must terminate: %+v", st.Result)
	}
}
