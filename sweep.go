package doda

// Sweep subsystem re-exports: library users drive sharded parameter
// grids through the root package and never import internal/.

import (
	"doda/internal/adversary"
	"doda/internal/sweep"
	"doda/internal/sweepd"
)

// Sweep types.
type (
	// SweepGrid specifies a scenario × algorithm × size × replicas grid.
	SweepGrid = sweep.Grid
	// SweepScenario names one registry scenario with parameter overrides.
	SweepScenario = sweep.ScenarioRef
	// SweepCell is one grid point with its deterministic seed.
	SweepCell = sweep.Cell
	// SweepCellResult is one completed cell's statistics.
	SweepCellResult = sweep.CellResult
	// SweepTotals summarises a whole sweep.
	SweepTotals = sweep.Totals
	// SweepOptions tunes one sweep execution (workers, streaming hook).
	SweepOptions = sweep.Options
	// SweepMetric is a JSON-friendly summary of one measurement.
	SweepMetric = sweep.Metric
)

// RunSweep shards the grid's cells across workers and returns the
// per-cell results in cell order plus fleet totals; results are
// bit-for-bit independent of the worker count.
func RunSweep(grid SweepGrid, opt SweepOptions) ([]SweepCellResult, SweepTotals, error) {
	return sweep.Run(grid, opt)
}

// ParseSweepScenarios parses the semicolon-separated scenario-list
// syntax cmd/dodasweep accepts (name[:k=v,k2=v2];...).
func ParseSweepScenarios(raw string) ([]SweepScenario, error) {
	return sweep.ParseScenarios(raw)
}

// SweepAlgorithms lists the algorithm names a sweep grid accepts.
func SweepAlgorithms() []string { return sweep.AlgorithmNames() }

// SweepAutoProvenanceThreshold is the node count at and above which the
// grid's "auto" provenance choice drops from full bitset provenance to
// count-only (see SweepGrid.Provenance).
const SweepAutoProvenanceThreshold = sweep.AutoProvenanceThreshold

// Checkpointed sweep service types (internal/sweepd).
type (
	// SweepCheckpointOptions tunes a checkpointed, resumable, optionally
	// sharded sweep execution.
	SweepCheckpointOptions = sweepd.Options
	// SweepCheckpointHeader is a checkpoint's identity record (grid
	// fingerprint, shard layout, the grid itself).
	SweepCheckpointHeader = sweepd.Header
	// SweepCheckpointRecord is one journaled cell.
	SweepCheckpointRecord = sweepd.CellRecord
)

// RunCheckpointedSweep executes one shard of the grid with per-cell
// checkpointing in dir: every completed cell is journaled to a
// crc-guarded JSONL segment, and a resumed run (Options.Resume) skips the
// journaled cells while re-emitting a stream byte-identical to an
// uninterrupted run. Returns the shard's results in cell order plus the
// shard totals.
func RunCheckpointedSweep(grid SweepGrid, dir string, opt SweepCheckpointOptions) ([]SweepCellResult, SweepTotals, error) {
	return sweepd.Run(grid, dir, opt)
}

// MergeSweepCheckpoints stitches the checkpoints of a complete m-way
// sharded sweep into one cell-ordered result stream plus fleet totals,
// byte-identical (through JSON) to an uninterrupted unsharded run.
func MergeSweepCheckpoints(dirs []string) ([]SweepCellResult, SweepTotals, error) {
	return sweepd.Merge(dirs)
}

// ReadSweepCheckpoint reads a checkpoint directory without opening it
// for writing: its identity header and every journaled cell.
func ReadSweepCheckpoint(dir string) (SweepCheckpointHeader, []SweepCheckpointRecord, error) {
	return sweepd.ReadCheckpoint(dir)
}

// SweepShardOf maps a cell index to one of m disjoint shards with a
// stable hash: m processes running shards 0..m-1 cover a grid exactly
// once (see SweepCheckpointOptions.ShardIndex/ShardCount).
func SweepShardOf(index, shards int) int { return sweep.ShardOf(index, shards) }

// SweepTotalsOf folds cell results into fleet totals in slice order;
// pass results sorted by cell index to reproduce Run's totals exactly.
func SweepTotalsOf(results []SweepCellResult) SweepTotals { return sweep.TotalsOf(results) }

// NewGeneratedAdversary exposes the Generated adversary the sweep fast
// path uses: it feeds gen's interactions straight to the engine with no
// stream caching — the right workload feed for measurement loops that
// grant no look-ahead knowledge.
func NewGeneratedAdversary(name string, n int, gen func(t int) Interaction) (Adversary, error) {
	return adversary.NewGenerated(name, n, gen)
}
