package doda

// Sweep subsystem re-exports: library users drive sharded parameter
// grids through the root package and never import internal/.

import (
	"doda/internal/adversary"
	"doda/internal/sweep"
)

// Sweep types.
type (
	// SweepGrid specifies a scenario × algorithm × size × replicas grid.
	SweepGrid = sweep.Grid
	// SweepScenario names one registry scenario with parameter overrides.
	SweepScenario = sweep.ScenarioRef
	// SweepCell is one grid point with its deterministic seed.
	SweepCell = sweep.Cell
	// SweepCellResult is one completed cell's statistics.
	SweepCellResult = sweep.CellResult
	// SweepTotals summarises a whole sweep.
	SweepTotals = sweep.Totals
	// SweepOptions tunes one sweep execution (workers, streaming hook).
	SweepOptions = sweep.Options
	// SweepMetric is a JSON-friendly summary of one measurement.
	SweepMetric = sweep.Metric
)

// RunSweep shards the grid's cells across workers and returns the
// per-cell results in cell order plus fleet totals; results are
// bit-for-bit independent of the worker count.
func RunSweep(grid SweepGrid, opt SweepOptions) ([]SweepCellResult, SweepTotals, error) {
	return sweep.Run(grid, opt)
}

// ParseSweepScenarios parses the semicolon-separated scenario-list
// syntax cmd/dodasweep accepts (name[:k=v,k2=v2];...).
func ParseSweepScenarios(raw string) ([]SweepScenario, error) {
	return sweep.ParseScenarios(raw)
}

// SweepAlgorithms lists the algorithm names a sweep grid accepts.
func SweepAlgorithms() []string { return sweep.AlgorithmNames() }

// SweepAutoProvenanceThreshold is the node count at and above which the
// grid's "auto" provenance choice drops from full bitset provenance to
// count-only (see SweepGrid.Provenance).
const SweepAutoProvenanceThreshold = sweep.AutoProvenanceThreshold

// NewGeneratedAdversary exposes the Generated adversary the sweep fast
// path uses: it feeds gen's interactions straight to the engine with no
// stream caching — the right workload feed for measurement loops that
// grant no look-ahead knowledge.
func NewGeneratedAdversary(name string, n int, gen func(t int) Interaction) (Adversary, error) {
	return adversary.NewGenerated(name, n, gen)
}
